// Package opt computes exact optimal schedules for small PDGs under
// the paper's execution model, by branch and bound over placements.
//
// The paper's introduction laments that "no baseline is available from
// which to compare the resulting schedules" because the problem is
// NP-hard. For graphs of up to a dozen-odd tasks an exact optimum *is*
// computable, and having it lets the testbed measure each heuristic's
// true distance from optimal (see the distance-from-optimal extension
// experiment) and verify the Gerasoulis bound the paper cites: on
// coarse-grained graphs any list schedule is within a factor of 2 of
// optimal.
//
// Search space: every schedule corresponds to a global start-time
// order of tasks (topologically consistent) plus a processor choice
// per task, re-timed greedily. The solver therefore does DFS over
// ready tasks × candidate processors (used processors plus one fresh —
// processors are interchangeable), pruning with the classical
// communication-free longest-remaining-path lower bound and starting
// from the best heuristic schedule as incumbent.
package opt

import (
	"errors"
	"fmt"

	"schedcomp/internal/dag"
	"schedcomp/internal/sched"
)

// Options bounds the exact search.
type Options struct {
	// MaxTasks refuses graphs larger than this (default 14): beyond
	// that the search space explodes.
	MaxTasks int
	// MaxStates aborts after this many explored states (default 20M).
	MaxStates int64
	// Incumbent is an optional starting upper bound (e.g. the best
	// heuristic schedule); 0 means "sum of all weights + 1".
	Incumbent int64
}

func (o *Options) fill() {
	if o.MaxTasks == 0 {
		o.MaxTasks = 14
	}
	if o.MaxStates == 0 {
		o.MaxStates = 20_000_000
	}
}

// Result is an optimal schedule and search statistics.
type Result struct {
	Makespan  int64
	Placement *sched.Placement
	Explored  int64
}

// Errors returned by Solve.
var (
	ErrTooLarge = errors.New("opt: graph exceeds MaxTasks")
	ErrBudget   = errors.New("opt: state budget exhausted before proving optimality")
)

type solver struct {
	g        *dag.Graph
	n        int
	blevel   []int64 // communication-free b-levels (lower bound paths)
	best     int64
	bestSeq  []dag.NodeID
	bestProc []int
	explored int64
	budget   int64

	// DFS state.
	seq       []dag.NodeID
	procOf    []int
	finish    []int64
	procFree  []int64
	missing   []int // unscheduled predecessor count
	scheduled []bool
}

// Solve returns an optimal schedule for g. The graph must be acyclic
// and within the configured size limits.
func Solve(g *dag.Graph, opts Options) (*Result, error) {
	opts.fill()
	n := g.NumNodes()
	if n > opts.MaxTasks {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, n, opts.MaxTasks)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if n == 0 {
		return &Result{Placement: sched.NewPlacement(0)}, nil
	}
	bl, err := g.BLevelsNoComm()
	if err != nil {
		return nil, err
	}
	ub := opts.Incumbent
	if ub <= 0 {
		ub = g.SerialTime() + 1
	}
	s := &solver{
		g:         g,
		n:         n,
		blevel:    bl,
		best:      ub,
		budget:    opts.MaxStates,
		procOf:    make([]int, n),
		finish:    make([]int64, n),
		missing:   make([]int, n),
		scheduled: make([]bool, n),
	}
	for v := 0; v < n; v++ {
		s.missing[v] = g.InDegree(dag.NodeID(v))
	}
	// Note: while no witness schedule has been recorded (bestSeq ==
	// nil) the bound pruning is disabled, so the first completed
	// schedule is always accepted; a caller-supplied incumbent can
	// therefore never leave the solver without a witness.
	exhausted := s.dfs(0, 0)
	if exhausted {
		return nil, fmt.Errorf("%w (%d states)", ErrBudget, s.explored)
	}
	pl := sched.NewPlacement(n)
	for i, v := range s.bestSeq {
		pl.Assign(v, s.bestProc[i])
	}
	pl.Compact()
	res := &Result{Makespan: s.best, Placement: pl, Explored: s.explored}
	return res, nil
}

// dfs explores states; returns true if the budget ran out.
func (s *solver) dfs(done int, makespan int64) bool {
	s.explored++
	if s.explored > s.budget {
		return true
	}
	if done == s.n {
		if makespan < s.best || s.bestSeq == nil {
			s.best = makespan
			s.bestSeq = append(s.bestSeq[:0], s.seq...)
			s.bestProc = make([]int, len(s.seq))
			for i, v := range s.seq {
				s.bestProc[i] = s.procOf[v]
			}
		}
		return false
	}
	// Lower bound: every unscheduled task still needs its
	// communication-free remaining path, starting no earlier than its
	// scheduled predecessors finish (communication relaxed to zero).
	if s.lowerBound(makespan) >= s.best && s.bestSeq != nil {
		return false
	}

	used := len(s.procFree)
	for v := 0; v < s.n; v++ {
		if s.scheduled[v] || s.missing[v] != 0 {
			continue
		}
		node := dag.NodeID(v)
		w := s.g.Weight(node)
		cand := used
		if cand < s.n {
			cand++ // one fresh processor (they are interchangeable)
		}
		for p := 0; p < cand; p++ {
			var start int64
			if p < used {
				start = s.procFree[p]
			}
			for _, e := range s.g.Preds(node) {
				t := s.finish[e.To]
				if s.procOf[e.To] != p {
					t += e.Weight
				}
				if t > start {
					start = t
				}
			}
			f := start + w
			if s.bestSeq != nil && start+s.blevel[v] >= s.best {
				continue // this task alone already busts the bound
			}
			// Apply.
			var oldFree int64
			if p == used {
				s.procFree = append(s.procFree, f)
			} else {
				oldFree = s.procFree[p]
				s.procFree[p] = f
			}
			s.scheduled[v] = true
			s.procOf[v] = p
			s.finish[v] = f
			s.seq = append(s.seq, node)
			for _, e := range s.g.Succs(node) {
				s.missing[e.To]--
			}
			nm := makespan
			if f > nm {
				nm = f
			}
			out := s.dfs(done+1, nm)
			// Undo.
			for _, e := range s.g.Succs(node) {
				s.missing[e.To]++
			}
			s.seq = s.seq[:len(s.seq)-1]
			s.scheduled[v] = false
			if p == used {
				s.procFree = s.procFree[:used]
			} else {
				s.procFree[p] = oldFree
			}
			if out {
				return true
			}
		}
	}
	return false
}

// lowerBound relaxes communication to zero: each unscheduled task can
// finish no earlier than (latest scheduled-predecessor finish, chained
// through unscheduled predecessors) plus its remaining path.
func (s *solver) lowerBound(makespan int64) int64 {
	lb := makespan
	// est[v]: earliest conceivable start with zero communication.
	est := make([]int64, s.n)
	order, _ := s.g.TopoOrder()
	for _, v := range order {
		if s.scheduled[v] {
			continue
		}
		var e int64
		for _, a := range s.g.Preds(v) {
			p := a.To
			var t int64
			if s.scheduled[p] {
				t = s.finish[p]
			} else {
				t = est[p] + s.g.Weight(p)
			}
			if t > e {
				e = t
			}
		}
		est[v] = e
		if c := e + s.blevel[v]; c > lb {
			lb = c
		}
	}
	return lb
}
