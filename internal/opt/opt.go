// Package opt computes exact optimal schedules for small PDGs under
// the paper's execution model, by branch and bound over placements.
//
// The paper's introduction laments that "no baseline is available from
// which to compare the resulting schedules" because the problem is
// NP-hard. For graphs of up to a dozen-odd tasks an exact optimum *is*
// computable, and having it lets the testbed measure each heuristic's
// true distance from optimal (see the distance-from-optimal extension
// experiment) and verify the Gerasoulis bound the paper cites: on
// coarse-grained graphs any list schedule is within a factor of 2 of
// optimal.
//
// Search space: every schedule corresponds to a global start-time
// order of tasks (topologically consistent) plus a processor choice
// per task, re-timed greedily. The solver therefore does DFS over
// ready tasks × candidate processors (used processors plus one fresh —
// processors are interchangeable), pruning with the classical
// communication-free longest-remaining-path lower bound and starting
// from the best heuristic schedule as incumbent.
//
// Two entry points share the search core. Solve runs to completion (or
// budget) and returns the optimum. Probe exposes the same search as a
// resumable object: callers grant states in slices via Step and may
// interleave other work — notably the anytime optimizer, which runs a
// genetic search in the gaps and feeds improved upper bounds back with
// Tighten. A Probe additionally maintains a live, proven lower bound
// on the optimum (see LowerBound), sound at every pause point, so
// partial runs still yield a certified optimality gap.
package opt

import (
	"errors"
	"fmt"

	"schedcomp/internal/dag"
	"schedcomp/internal/sched"
)

// Options bounds the exact search.
type Options struct {
	// MaxTasks refuses graphs larger than this (default 14): beyond
	// that the search space explodes.
	MaxTasks int
	// MaxStates aborts Solve after roughly this many search steps
	// (default 20M). Exhaustion is not a bare failure: Solve returns
	// the incumbent-so-far Result — best schedule found, states
	// explored, and the proven lower bound — alongside an error
	// wrapping ErrBudget so callers can distinguish "optimal, proven"
	// from "best effort, bound not proven".
	MaxStates int64
	// Incumbent is an optional starting upper bound (e.g. the best
	// heuristic schedule); 0 means "sum of all weights + 1". It does
	// not enable pruning until the search finds its own witness
	// schedule (see Probe.Tighten for the externally-witnessed
	// variant), so a caller-supplied incumbent can never leave Solve
	// without a placement.
	Incumbent int64
}

func (o *Options) fill() {
	if o.MaxTasks == 0 {
		o.MaxTasks = 14
	}
	if o.MaxStates == 0 {
		o.MaxStates = 20_000_000
	}
}

// Result is the outcome of a search: an optimal schedule when Proven,
// otherwise the best found before the budget ran out.
type Result struct {
	// Makespan is the best known upper bound: the witness schedule's
	// makespan when Placement is non-nil, otherwise the caller's
	// incumbent bound.
	Makespan int64
	// Placement is the witness achieving Makespan; nil only when a
	// budget abort struck before the search completed any schedule.
	Placement *sched.Placement
	// Explored counts applied search moves (plus the root state).
	Explored int64
	// LowerBound is a proven lower bound on the optimal makespan,
	// valid regardless of how far the search got.
	LowerBound int64
	// Proven reports that the search ran to completion, i.e. Makespan
	// is the exact optimum and equals LowerBound.
	Proven bool
}

// Errors returned by Solve.
var (
	ErrTooLarge = errors.New("opt: graph exceeds MaxTasks")
	ErrBudget   = errors.New("opt: state budget exhausted before proving optimality")
)

// Solve returns an optimal schedule for g. The graph must be acyclic
// and within the configured size limits. If the state budget runs out
// first, Solve returns the partial Result (incumbent-so-far, with
// Proven == false) together with an error wrapping ErrBudget.
func Solve(g *dag.Graph, opts Options) (*Result, error) {
	p, err := NewProbe(g, opts)
	if err != nil {
		return nil, err
	}
	if !p.Step(p.opts.MaxStates) {
		res := p.Result()
		return res, fmt.Errorf("%w (%d states, proven lower bound %d)",
			ErrBudget, res.Explored, res.LowerBound)
	}
	return p.Result(), nil
}
