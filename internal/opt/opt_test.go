package opt

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"schedcomp/internal/dag"
	"schedcomp/internal/gen"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/paperex"
	"schedcomp/internal/sched"

	_ "schedcomp/internal/heuristics/clans"
	_ "schedcomp/internal/heuristics/dsc"
	_ "schedcomp/internal/heuristics/hu"
	_ "schedcomp/internal/heuristics/mcp"
	_ "schedcomp/internal/heuristics/mh"
)

func solve(t *testing.T, g *dag.Graph) *Result {
	t.Helper()
	res, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The witness must rebuild to the claimed makespan and validate.
	sc, err := sched.Build(g, res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if sc.Makespan != res.Makespan {
		t.Fatalf("witness makespan %d != claimed %d", sc.Makespan, res.Makespan)
	}
	return res
}

func TestPaperExampleOptimalIs130(t *testing.T) {
	// The communication-free critical path of the appendix example is
	// 10+30+40+50 = 130, a hard lower bound; CLANS achieves it, so the
	// optimum is exactly 130.
	res := solve(t, paperex.Graph())
	if res.Makespan != 130 {
		t.Errorf("optimal = %d, want 130", res.Makespan)
	}
}

func TestSingleNode(t *testing.T) {
	g := dag.New("one")
	g.AddNode(42)
	if res := solve(t, g); res.Makespan != 42 {
		t.Errorf("optimal = %d, want 42", res.Makespan)
	}
}

func TestIndependentTasks(t *testing.T) {
	g := dag.New("indep")
	for i := 0; i < 5; i++ {
		g.AddNode(10)
	}
	if res := solve(t, g); res.Makespan != 10 {
		t.Errorf("optimal = %d, want 10", res.Makespan)
	}
}

func TestChainIsSerial(t *testing.T) {
	g := dag.New("chain")
	var prev dag.NodeID = -1
	for i := 0; i < 6; i++ {
		v := g.AddNode(int64(5 + i))
		if prev >= 0 {
			g.MustAddEdge(prev, v, 100)
		}
		prev = v
	}
	if res := solve(t, g); res.Makespan != g.SerialTime() {
		t.Errorf("optimal = %d, want serial %d", res.Makespan, g.SerialTime())
	}
}

func TestForkCommTradeoff(t *testing.T) {
	// root(10) -> two tasks of 100 with edges of weight e. Parallel
	// costs 10 + e + 100, serial costs 210: the optimum flips at
	// e = 100.
	build := func(e int64) *dag.Graph {
		g := dag.New("fork")
		r := g.AddNode(10)
		a := g.AddNode(100)
		b := g.AddNode(100)
		g.MustAddEdge(r, a, e)
		g.MustAddEdge(r, b, e)
		return g
	}
	if res := solve(t, build(5)); res.Makespan != 115 {
		t.Errorf("cheap fork: optimal = %d, want 115", res.Makespan)
	}
	if res := solve(t, build(500)); res.Makespan != 210 {
		t.Errorf("expensive fork: optimal = %d, want 210 (serial)", res.Makespan)
	}
	if res := solve(t, build(100)); res.Makespan != 210 {
		t.Errorf("break-even fork: optimal = %d, want 210", res.Makespan)
	}
}

func TestRejectsLargeGraphs(t *testing.T) {
	g := dag.New("big")
	for i := 0; i < 30; i++ {
		g.AddNode(1)
	}
	if _, err := Solve(g, Options{}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	g := dag.New("wide")
	for i := 0; i < 10; i++ {
		g.AddNode(int64(i + 1))
	}
	if _, err := Solve(g, Options{MaxStates: 10}); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestIncumbentDoesNotBreakWitness(t *testing.T) {
	g := paperex.Graph()
	res, err := Solve(g, Options{Incumbent: 130}) // exactly the optimum
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 130 || res.Placement == nil {
		t.Fatalf("makespan %d, placement %v", res.Makespan, res.Placement)
	}
}

// Property: no heuristic ever beats the exact optimum, and the optimum
// is at least the communication-free critical path.
func TestQuickOptimalDominatesHeuristics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		g := dag.New("q")
		for i := 0; i < n; i++ {
			g.AddNode(int64(1 + rng.Intn(50)))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(100) < 35 {
					g.MustAddEdge(dag.NodeID(i), dag.NodeID(j), int64(rng.Intn(80)))
				}
			}
		}
		res, err := Solve(g, Options{})
		if err != nil {
			return false
		}
		lv, err := g.BLevelsNoComm()
		if err != nil {
			return false
		}
		var cp int64
		for _, l := range lv {
			if l > cp {
				cp = l
			}
		}
		if res.Makespan < cp {
			return false
		}
		for _, s := range heuristics.All() {
			sc, err := heuristics.Run(s, g)
			if err != nil {
				return false
			}
			if sc.Makespan < res.Makespan {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The Gerasoulis & Yang bound the paper cites: for coarse-grained
// graphs (granularity > 1) any list schedule is within a factor of 2
// of optimal. Check it for MH and HU on small generated coarse graphs;
// CLANS/DSC/MCP should satisfy it too.
func TestCoarseGrainFactorTwoBound(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := gen.MustGenerate(gen.Params{
			Nodes: 12, Anchor: 2, WMin: 20, WMax: 100,
			Gran: gen.Band{Lo: 2.0},
		}, 300+seed)
		if g.NumNodes() > 14 {
			continue
		}
		res, err := Solve(g, Options{MaxStates: 50_000_000})
		if errors.Is(err, ErrBudget) {
			continue // rare; other seeds cover the property
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range heuristics.All() {
			sc, err := heuristics.Run(s, g)
			if err != nil {
				t.Fatal(err)
			}
			if sc.Makespan > 2*res.Makespan {
				t.Errorf("seed %d: %s makespan %d > 2x optimal %d on coarse graph",
					seed, s.Name(), sc.Makespan, res.Makespan)
			}
		}
	}
}
