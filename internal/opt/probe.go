package opt

import (
	"fmt"

	"schedcomp/internal/dag"
	"schedcomp/internal/sched"
)

// move is one branch decision: schedule task v on processor p. start
// and fin are valid exactly in the parent frame's state (every
// application of a frame's move happens with all of that frame's
// earlier siblings undone). bound is a proven lower bound on the
// makespan of every completion reachable through this move.
type move struct {
	v     dag.NodeID
	p     int
	start int64
	fin   int64
	bound int64
}

// frame is one level of the explicit DFS stack: the moves available in
// its entry state, a cursor over them, and undo bookkeeping for the
// currently applied move (moves[next-1] when applied is true).
type frame struct {
	moves   []move
	next    int
	mk      int64 // makespan entering this frame
	applied bool
	fresh   bool  // applied move opened a new processor
	oldFree int64 // procFree value to restore otherwise
}

// Probe is a resumable branch-and-bound search over schedules of one
// graph. Callers grant search states in slices with Step, read the
// live proven lower bound with LowerBound, and may inject externally
// witnessed upper bounds with Tighten. A Probe is not safe for
// concurrent use.
type Probe struct {
	g    *dag.Graph
	n    int
	opts Options

	blevel []int64      // communication-free b-levels
	topo   []dag.NodeID // cached topological order
	cpLB   int64        // communication-free critical path (root bound)

	// ub is the current pruning bound; it is always a sound upper
	// bound on the optimum (serial time + 1, a trusted caller
	// incumbent, or a completed schedule's makespan). haveBound gates
	// pruning: false until the search records its own witness or the
	// caller vouches for an external one via Tighten, mirroring
	// Solve's "the first completed schedule is always accepted" rule.
	ub        int64
	haveBound bool

	// Witness: the best complete schedule this probe itself has found.
	witMk   int64
	witSeq  []dag.NodeID
	witProc []int

	explored int64
	done     bool
	lbHW     int64 // monotone high-water mark of reported lower bounds

	stack []frame
	spare [][]move // recycled move slices from popped frames

	// DFS state, mutated by apply/undo.
	seq       []dag.NodeID
	procOf    []int
	finish    []int64
	procFree  []int64
	missing   []int
	scheduled []bool
	doneCount int
	est       []int64 // scratch for lowerBound
}

// NewProbe validates g and prepares a search. Options.MaxStates is
// ignored here — the budget is whatever the caller grants via Step.
func NewProbe(g *dag.Graph, opts Options) (*Probe, error) {
	opts.fill()
	n := g.NumNodes()
	if n > opts.MaxTasks {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, n, opts.MaxTasks)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	p := &Probe{g: g, n: n, opts: opts}
	if n == 0 {
		p.done = true
		p.haveBound = true
		p.witSeq = []dag.NodeID{}
		return p, nil
	}
	bl, err := g.BLevelsNoComm()
	if err != nil {
		return nil, err
	}
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	// The probe outlives this call and steps across cache-interleaved
	// work, so it keeps owned copies of the shared cached views.
	p.blevel = append([]int64(nil), bl...)
	p.topo = append([]dag.NodeID(nil), topo...)
	for _, l := range bl {
		if l > p.cpLB {
			p.cpLB = l
		}
	}
	p.ub = opts.Incumbent
	if p.ub <= 0 {
		p.ub = g.SerialTime() + 1
	}
	p.procOf = make([]int, n)
	p.finish = make([]int64, n)
	p.missing = make([]int, n)
	p.scheduled = make([]bool, n)
	p.est = make([]int64, n)
	for v := 0; v < n; v++ {
		p.missing[v] = g.InDegree(dag.NodeID(v))
	}
	p.explored = 1 // the root state
	p.stack = append(p.stack, frame{moves: p.genMoves(0)})
	return p, nil
}

// Step advances the search by at most states units of work and reports
// whether it has completed. Each unit either applies one move (counted
// in Explored) or retires an exhausted stack frame, so granting k
// states costs O(k) regardless of pruning.
func (p *Probe) Step(states int64) bool {
	for ; states > 0 && !p.done; states-- {
		p.step1()
	}
	return p.done
}

// Done reports whether the search space is exhausted; once true, the
// lower bound equals the optimum.
func (p *Probe) Done() bool { return p.done }

// Explored returns the number of states explored so far.
func (p *Probe) Explored() int64 { return p.explored }

// Incumbent returns the makespan of the best complete schedule the
// probe itself has found, and whether one exists. (A Tighten-supplied
// bound is not an incumbent: the caller holds that witness.)
func (p *Probe) Incumbent() (int64, bool) {
	return p.witMk, p.witSeq != nil
}

// IncumbentPlacement materialises the witness placement for the best
// schedule the probe has found, or nil if there is none yet.
func (p *Probe) IncumbentPlacement() *sched.Placement {
	if p.witSeq == nil {
		return nil
	}
	pl := sched.NewPlacement(p.n)
	for i, v := range p.witSeq {
		pl.Assign(v, p.witProc[i])
	}
	pl.Compact()
	return pl
}

// Tighten lowers the pruning bound to ub, which the caller guarantees
// is the makespan of a schedule it holds (e.g. the best GA
// individual). Unlike Options.Incumbent, a tightened bound prunes
// immediately: the probe only records schedules strictly better than
// ub, and if the search then completes without finding one, ub is
// proven optimal (LowerBound converges to ub).
func (p *Probe) Tighten(ub int64) {
	if ub <= 0 {
		return
	}
	if ub < p.ub {
		p.ub = ub
	}
	p.haveBound = true
}

// LowerBound returns a proven lower bound on the optimal makespan,
// monotone non-decreasing across calls. Soundness: every schedule is
// (a) already explored or pruned — its makespan is ≥ ub at the moment
// it was cut, hence ≥ the final best; (b) reachable only through an
// untried move of some stack frame, whose bound field undercuts it; or
// (c) below the communication-free critical path, which is impossible.
// The minimum over (a)'s ub and (b)'s frontier, clamped by (c), is
// therefore ≤ the optimum; once the frontier empties the bound is
// exactly the optimum.
func (p *Probe) LowerBound() int64 {
	lb := p.ub
	if !p.done {
		for i := range p.stack {
			f := &p.stack[i]
			for _, m := range f.moves[f.next:] {
				if m.bound < lb {
					lb = m.bound
				}
			}
		}
	}
	if lb < p.cpLB {
		lb = p.cpLB
	}
	if lb > p.lbHW {
		p.lbHW = lb
	}
	return p.lbHW
}

// Result snapshots the search as a Result (see Solve).
func (p *Probe) Result() *Result {
	r := &Result{
		Explored:   p.explored,
		LowerBound: p.LowerBound(),
		Proven:     p.done,
	}
	if p.witSeq != nil {
		r.Makespan = p.witMk
		r.Placement = p.IncumbentPlacement()
	} else {
		r.Makespan = p.ub
	}
	return r
}

// step1 performs one unit of work: undo the top frame's applied move
// if any, then either apply its next viable move (descending, or
// recording a completion), or pop the exhausted frame.
func (p *Probe) step1() {
	if len(p.stack) == 0 {
		p.done = true
		return
	}
	fi := len(p.stack) - 1
	f := &p.stack[fi]
	if f.applied {
		p.undo(f)
	}
	for f.next < len(f.moves) {
		m := f.moves[f.next]
		f.next++
		if p.haveBound && m.bound >= p.ub {
			continue // this move alone already busts the bound
		}
		p.apply(f, m)
		p.explored++
		nm := f.mk
		if m.fin > nm {
			nm = m.fin
		}
		if p.doneCount == p.n {
			p.record(nm)
			p.undo(f)
			return
		}
		// The cheap per-move bound passed; re-check with the full
		// relaxation before committing a frame to this subtree.
		if p.haveBound && p.lowerBound(nm) >= p.ub {
			p.undo(f)
			return
		}
		p.stack = append(p.stack, frame{mk: nm, moves: p.genMoves(nm)})
		return
	}
	p.spare = append(p.spare, f.moves)
	p.stack = p.stack[:fi]
}

// record accepts a completed schedule. While no witness exists and no
// external bound has been vouched for, the first completion is always
// accepted (even above a caller incumbent), preserving Solve's
// witness guarantee; afterwards only strict improvements count.
func (p *Probe) record(mk int64) {
	if mk >= p.ub && (p.witSeq != nil || p.haveBound) {
		return
	}
	p.witMk = mk
	p.witSeq = append(p.witSeq[:0], p.seq...)
	if cap(p.witProc) < len(p.seq) {
		p.witProc = make([]int, len(p.seq))
	}
	p.witProc = p.witProc[:len(p.seq)]
	for i, v := range p.seq {
		p.witProc[i] = p.procOf[v]
	}
	p.ub = mk
	p.haveBound = true
}

func (p *Probe) apply(f *frame, m move) {
	if m.p == len(p.procFree) {
		f.fresh = true
		p.procFree = append(p.procFree, m.fin)
	} else {
		f.fresh = false
		f.oldFree = p.procFree[m.p]
		p.procFree[m.p] = m.fin
	}
	p.scheduled[m.v] = true
	p.procOf[m.v] = m.p
	p.finish[m.v] = m.fin
	p.seq = append(p.seq, m.v)
	for _, e := range p.g.Succs(m.v) {
		p.missing[e.To]--
	}
	p.doneCount++
	f.applied = true
}

func (p *Probe) undo(f *frame) {
	m := f.moves[f.next-1]
	for _, e := range p.g.Succs(m.v) {
		p.missing[e.To]++
	}
	p.seq = p.seq[:len(p.seq)-1]
	p.scheduled[m.v] = false
	if f.fresh {
		p.procFree = p.procFree[:len(p.procFree)-1]
	} else {
		p.procFree[m.p] = f.oldFree
	}
	p.doneCount--
	f.applied = false
}

// genMoves enumerates every (ready task × candidate processor) branch
// of the current state: all used processors plus one fresh (they are
// interchangeable). mk is the makespan entering the frame; each move's
// bound is max(mk, start + blevel), a proven floor for its subtree.
func (p *Probe) genMoves(mk int64) []move {
	var ms []move
	if k := len(p.spare); k > 0 {
		ms = p.spare[k-1][:0]
		p.spare = p.spare[:k-1]
	}
	used := len(p.procFree)
	for v := 0; v < p.n; v++ {
		if p.scheduled[v] || p.missing[v] != 0 {
			continue
		}
		node := dag.NodeID(v)
		w := p.g.Weight(node)
		cand := used
		if cand < p.n {
			cand++
		}
		for proc := 0; proc < cand; proc++ {
			var start int64
			if proc < used {
				start = p.procFree[proc]
			}
			for _, e := range p.g.Preds(node) {
				t := p.finish[e.To]
				if p.procOf[e.To] != proc {
					t += e.Weight
				}
				if t > start {
					start = t
				}
			}
			b := start + p.blevel[v]
			if mk > b {
				b = mk
			}
			ms = append(ms, move{v: node, p: proc, start: start, fin: start + w, bound: b})
		}
	}
	return ms
}

// lowerBound relaxes communication to zero: each unscheduled task can
// finish no earlier than (latest scheduled-predecessor finish, chained
// through unscheduled predecessors) plus its remaining path.
func (p *Probe) lowerBound(makespan int64) int64 {
	lb := makespan
	est := p.est
	for i := range est {
		est[i] = 0
	}
	for _, v := range p.topo {
		if p.scheduled[v] {
			continue
		}
		var e int64
		for _, a := range p.g.Preds(v) {
			pr := a.To
			var t int64
			if p.scheduled[pr] {
				t = p.finish[pr]
			} else {
				t = est[pr] + p.g.Weight(pr)
			}
			if t > e {
				e = t
			}
		}
		est[v] = e
		if c := e + p.blevel[v]; c > lb {
			lb = c
		}
	}
	return lb
}
