package opt

import (
	"errors"
	"math/rand"
	"testing"

	"schedcomp/internal/dag"
	"schedcomp/internal/paperex"
	"schedcomp/internal/sched"
)

func randomGraph(seed int64, maxNodes int) *dag.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(maxNodes-1)
	g := dag.New("probe-rand")
	for i := 0; i < n; i++ {
		g.AddNode(int64(1 + rng.Intn(40)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(100) < 30 {
				g.MustAddEdge(dag.NodeID(i), dag.NodeID(j), int64(rng.Intn(60)))
			}
		}
	}
	return g
}

// Regression for the MaxStates abort path: exhaustion must return the
// incumbent-so-far with a distinguishable "bound not proven" error,
// not a bare failure.
func TestBudgetAbortReturnsIncumbent(t *testing.T) {
	g := dag.New("wide")
	for i := 0; i < 10; i++ {
		g.AddNode(int64(i + 1))
	}
	// 60 steps: enough to complete at least one depth-first schedule
	// (depth 10), nowhere near enough to finish the search.
	res, err := Solve(g, Options{MaxStates: 60})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if res == nil {
		t.Fatal("budget abort returned nil Result; want incumbent-so-far")
	}
	if res.Proven {
		t.Error("aborted search claims Proven")
	}
	if res.Placement == nil {
		t.Fatal("no witness recorded before abort")
	}
	sc, err := sched.Build(g, res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if sc.Makespan != res.Makespan {
		t.Errorf("witness makespan %d != claimed %d", sc.Makespan, res.Makespan)
	}
	// Independent tasks, as many processors as tasks: optimum is the
	// max weight. The partial bound must never exceed it.
	if res.LowerBound > 10 {
		t.Errorf("LowerBound %d exceeds true optimum 10", res.LowerBound)
	}
	if res.LowerBound < 10 {
		// The communication-free critical path alone proves 10 here.
		t.Errorf("LowerBound %d below critical path 10", res.LowerBound)
	}
}

// An abort so early that no schedule has completed yet must still
// return a Result (with a nil Placement) rather than nothing.
func TestBudgetAbortBeforeWitness(t *testing.T) {
	g := dag.New("wide")
	for i := 0; i < 10; i++ {
		g.AddNode(int64(i + 1))
	}
	res, err := Solve(g, Options{MaxStates: 3})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if res == nil {
		t.Fatal("budget abort returned nil Result")
	}
	if res.Placement != nil {
		t.Fatalf("3 steps cannot complete a 10-task schedule, placement %v", res.Placement)
	}
	if res.Proven {
		t.Error("aborted search claims Proven")
	}
	if res.LowerBound <= 0 || res.LowerBound > 10 {
		t.Errorf("LowerBound = %d, want in (0, 10]", res.LowerBound)
	}
}

// A probe stepped in small slices must land on exactly the Solve
// optimum, with the lower bound converging to it.
func TestProbeResumeMatchesSolve(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		g := randomGraph(seed, 8)
		want, err := Solve(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProbe(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		steps := 0
		for !p.Step(7) {
			if steps++; steps > 1_000_000 {
				t.Fatal("probe did not converge")
			}
		}
		res := p.Result()
		if !res.Proven {
			t.Fatal("completed probe not Proven")
		}
		if res.Makespan != want.Makespan {
			t.Errorf("seed %d: probe optimum %d != Solve optimum %d",
				seed, res.Makespan, want.Makespan)
		}
		if res.LowerBound != res.Makespan {
			t.Errorf("seed %d: completed probe LowerBound %d != Makespan %d",
				seed, res.LowerBound, res.Makespan)
		}
		sc, err := sched.Build(g, res.Placement)
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Validate(); err != nil {
			t.Fatal(err)
		}
		if sc.Makespan != res.Makespan {
			t.Errorf("seed %d: witness rebuilds to %d, claimed %d",
				seed, sc.Makespan, res.Makespan)
		}
	}
}

// The live lower bound is monotone non-decreasing across pauses and
// never exceeds the true optimum at any pause point.
func TestProbeLowerBoundMonotoneAndSound(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		g := randomGraph(100+seed, 8)
		want, err := Solve(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProbe(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		prev := int64(0)
		for !p.Done() {
			p.Step(5)
			lb := p.LowerBound()
			if lb < prev {
				t.Fatalf("seed %d: lower bound regressed %d -> %d", seed, prev, lb)
			}
			if lb > want.Makespan {
				t.Fatalf("seed %d: lower bound %d exceeds optimum %d",
					seed, lb, want.Makespan)
			}
			prev = lb
		}
		if got := p.LowerBound(); got != want.Makespan {
			t.Errorf("seed %d: final lower bound %d != optimum %d",
				seed, got, want.Makespan)
		}
	}
}

// Tighten with an externally witnessed optimum must let the search
// prove it without ever producing its own witness; a looser external
// bound must still be beaten by a recorded witness.
func TestTightenProvesExternalBound(t *testing.T) {
	g := paperex.Graph()

	p, err := NewProbe(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p.Tighten(130) // the known optimum — nothing strictly better exists
	for !p.Step(4096) {
	}
	if lb := p.LowerBound(); lb != 130 {
		t.Errorf("completed probe under Tighten(optimum): lower bound %d, want 130", lb)
	}
	if mk, ok := p.Incumbent(); ok && mk >= 130 {
		t.Errorf("probe recorded a non-improving witness: %d", mk)
	}

	p2, err := NewProbe(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2.Tighten(200) // loose external bound: the probe should beat it
	for !p2.Step(4096) {
	}
	mk, ok := p2.Incumbent()
	if !ok || mk != 130 {
		t.Fatalf("incumbent under loose Tighten = %d (have %v), want 130", mk, ok)
	}
	sc, err := sched.Build(g, p2.IncumbentPlacement())
	if err != nil {
		t.Fatal(err)
	}
	if sc.Makespan != 130 {
		t.Errorf("witness rebuilds to %d, want 130", sc.Makespan)
	}
}

func TestProbeTrivialGraphs(t *testing.T) {
	empty := dag.New("empty")
	p, err := NewProbe(empty, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Fatal("empty graph probe not immediately done")
	}
	res := p.Result()
	if res.Makespan != 0 || !res.Proven || res.Placement == nil {
		t.Fatalf("empty graph result = %+v", res)
	}

	one := dag.New("one")
	one.AddNode(42)
	p, err = NewProbe(one, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for !p.Step(16) {
	}
	res = p.Result()
	if res.Makespan != 42 || res.LowerBound != 42 || !res.Proven {
		t.Fatalf("single-node result = %+v", res)
	}
}
