// Package paperex provides the worked example graph the paper's
// appendix uses to illustrate all five heuristics (Figures 8, 10, 12,
// 14 and 16). The weights are stated directly in the CLANS walkthrough
// (§A.5) and the edge weights follow from the level table of the Hu
// example (Figure 14): level(n) = w(n) + max(edge + level(succ)) gives
// levels 150, 74, 135, 95, 50 for nodes 1..5.
//
// Node IDs here are zero-based: paper node k is NodeID k-1.
package paperex

import "schedcomp/internal/dag"

// Weights and levels as printed in the paper (1-indexed positions 1..5
// at slice indices 0..4).
var (
	// NodeWeights are the execution times of paper nodes 1..5.
	NodeWeights = []int64{10, 20, 30, 40, 50}
	// Levels are the communication-weighted levels from Figure 14.
	Levels = []int64{150, 74, 135, 95, 50}
	// CLANSParallelTime is the schedule length of the CLANS example
	// (Figure 16 C).
	CLANSParallelTime = int64(130)
	// SerialTime is the sum of the node weights.
	SerialTime = int64(150)
)

// Graph returns a fresh copy of the example PDG:
//
//	1 --5--> 2 --4--> 5
//	1 --5--> 3 --10--> 4 --5--> 5
//
// with node weights 10, 20, 30, 40, 50.
func Graph() *dag.Graph {
	g := dag.New("paper-appendix-example")
	n := make([]dag.NodeID, 5)
	for i, w := range NodeWeights {
		n[i] = g.AddNode(w)
	}
	g.MustAddEdge(n[0], n[1], 5)
	g.MustAddEdge(n[0], n[2], 5)
	g.MustAddEdge(n[2], n[3], 10)
	g.MustAddEdge(n[1], n[4], 4)
	g.MustAddEdge(n[3], n[4], 5)
	return g
}
