package paperex

import (
	"testing"
)

func TestGraphMatchesPaperFacts(t *testing.T) {
	g := Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 || g.NumEdges() != 5 {
		t.Fatalf("shape: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.SerialTime() != SerialTime {
		t.Errorf("serial time = %d, want %d", g.SerialTime(), SerialTime)
	}
	lv, err := g.BLevels()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range Levels {
		if lv[i] != want {
			t.Errorf("level(%d) = %d, want %d (paper Figure 14)", i+1, lv[i], want)
		}
	}
}

func TestGraphIsFresh(t *testing.T) {
	a := Graph()
	b := Graph()
	a.SetWeight(0, 999)
	if b.Weight(0) != NodeWeights[0] {
		t.Error("Graph() returned shared state")
	}
}
