// Package pq provides a small generic binary heap used for the ordered
// free lists and event lists of the scheduling heuristics.
//
// The heap is a min-heap with respect to the provided less function;
// heuristics wanting "highest priority first" pass a reversed
// comparison. Ties should be broken deterministically by the caller
// (typically by node ID) so that every run of a heuristic is
// reproducible.
package pq

// Heap is a binary min-heap ordered by the less function supplied at
// construction. The zero value is not usable; call New.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// New returns an empty heap ordered by less.
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// NewFrom returns a heap initialized with items (heapified in O(n)).
func NewFrom[T any](less func(a, b T) bool, items ...T) *Heap[T] {
	h := &Heap[T]{less: less, items: append([]T(nil), items...)}
	for i := len(h.items)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
	return h
}

// Len returns the number of elements.
func (h *Heap[T]) Len() int { return len(h.items) }

// Empty reports whether the heap has no elements.
func (h *Heap[T]) Empty() bool { return len(h.items) == 0 }

// Push inserts v.
func (h *Heap[T]) Push(v T) {
	h.items = append(h.items, v)
	h.up(len(h.items) - 1)
}

// Peek returns the minimum element without removing it. It panics on an
// empty heap.
func (h *Heap[T]) Peek() T {
	if len(h.items) == 0 {
		panic("pq: Peek on empty heap")
	}
	return h.items[0]
}

// Pop removes and returns the minimum element. It panics on an empty
// heap.
func (h *Heap[T]) Pop() T {
	if len(h.items) == 0 {
		panic("pq: Pop on empty heap")
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero
	h.items = h.items[:last]
	if len(h.items) > 0 {
		h.down(0)
	}
	return top
}

// Items returns the underlying slice in heap order (not sorted). The
// caller must not mutate it.
func (h *Heap[T]) Items() []T { return h.items }

// Fix re-establishes heap order after the caller mutated priorities of
// arbitrary elements in place. O(n).
func (h *Heap[T]) Fix() {
	for i := len(h.items)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
