package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func TestEmpty(t *testing.T) {
	h := New(intLess)
	if !h.Empty() || h.Len() != 0 {
		t.Fatal("new heap not empty")
	}
}

func TestPopOrder(t *testing.T) {
	h := New(intLess)
	for _, v := range []int{5, 3, 8, 1, 9, 2, 7} {
		h.Push(v)
	}
	want := []int{1, 2, 3, 5, 7, 8, 9}
	for _, w := range want {
		if got := h.Pop(); got != w {
			t.Fatalf("Pop = %d, want %d", got, w)
		}
	}
	if !h.Empty() {
		t.Fatal("heap not empty after draining")
	}
}

func TestPeek(t *testing.T) {
	h := NewFrom(intLess, 4, 2, 6)
	if h.Peek() != 2 {
		t.Fatalf("Peek = %d, want 2", h.Peek())
	}
	if h.Len() != 3 {
		t.Fatalf("Peek consumed an element")
	}
}

func TestPopPeekEmptyPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Pop":  func() { New(intLess).Pop() },
		"Peek": func() { New(intLess).Peek() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty heap did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNewFromHeapifies(t *testing.T) {
	items := []int{9, 4, 7, 1, 3, 8}
	h := NewFrom(intLess, items...)
	// NewFrom must not alias the input slice.
	items[0] = -100
	var got []int
	for !h.Empty() {
		got = append(got, h.Pop())
	}
	want := []int{1, 3, 4, 7, 8, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMaxHeapViaReversedLess(t *testing.T) {
	h := New(func(a, b int) bool { return a > b })
	for _, v := range []int{3, 1, 4, 1, 5} {
		h.Push(v)
	}
	if h.Pop() != 5 || h.Pop() != 4 || h.Pop() != 3 {
		t.Fatal("reversed comparison did not yield a max-heap")
	}
}

func TestFixAfterMutation(t *testing.T) {
	type task struct{ prio int }
	a, b, c := &task{3}, &task{1}, &task{2}
	h := NewFrom(func(x, y *task) bool { return x.prio < y.prio }, a, b, c)
	a.prio = 0
	h.Fix()
	if h.Pop() != a {
		t.Fatal("Fix did not restore heap order after priority mutation")
	}
}

func TestStructElements(t *testing.T) {
	type ev struct {
		at int64
		id int
	}
	h := New(func(a, b ev) bool {
		if a.at != b.at {
			return a.at < b.at
		}
		return a.id < b.id
	})
	h.Push(ev{5, 2})
	h.Push(ev{5, 1})
	h.Push(ev{3, 9})
	if got := h.Pop(); got.at != 3 {
		t.Fatalf("Pop = %+v, want at=3", got)
	}
	if got := h.Pop(); got.id != 1 {
		t.Fatalf("tie-break Pop = %+v, want id=1", got)
	}
}

// Property: draining the heap yields the sorted input.
func TestQuickSortsLikeSort(t *testing.T) {
	f := func(xs []int) bool {
		h := NewFrom(intLess, xs...)
		want := append([]int(nil), xs...)
		sort.Ints(want)
		for _, w := range want {
			if h.Pop() != w {
				return false
			}
		}
		return h.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved push/pop maintains the min property.
func TestQuickInterleaved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(intLess)
		var model []int
		for op := 0; op < 400; op++ {
			if h.Len() == 0 || rng.Intn(2) == 0 {
				v := rng.Intn(1000)
				h.Push(v)
				model = append(model, v)
				sort.Ints(model)
			} else {
				if got := h.Pop(); got != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		return h.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
