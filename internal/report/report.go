// Package report assembles the complete reproduction output — corpus
// summary, Tables 2–11, Figures 1–6 and (optionally) the extension
// experiments — into a single markdown document, so a full run can be
// archived or diffed against the paper with one command
// (cmd/schedbench -markdown).
package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"schedcomp/internal/core"
	"schedcomp/internal/corpus"
	"schedcomp/internal/experiments"
	"schedcomp/internal/stats"
)

// Options controls report contents.
type Options struct {
	// Title heads the document.
	Title string
	// Extensions adds the extension experiment tables (slower).
	Extensions bool
	// ExtensionSeed seeds the extension drivers.
	ExtensionSeed int64
	// Timestamp, when non-zero, is recorded in the header.
	Timestamp time.Time
}

// Write renders the full report for an evaluated corpus.
func Write(w io.Writer, c *corpus.Corpus, ev *core.Evaluation, opts Options) error {
	title := opts.Title
	if title == "" {
		title = "Multiprocessor scheduling heuristics: reproduction report"
	}
	fmt.Fprintf(w, "# %s\n\n", title)
	if !opts.Timestamp.IsZero() {
		fmt.Fprintf(w, "Generated %s.\n\n", opts.Timestamp.Format(time.RFC3339))
	}
	fmt.Fprintf(w, "Corpus: %d graphs in %d classes (seed %d, %d–%d nodes, %d per class).\n\n",
		c.NumGraphs(), len(c.Sets), c.Spec.Seed, c.Spec.MinNodes, c.Spec.MaxNodes, c.Spec.GraphsPerSet)
	fmt.Fprintf(w, "Heuristics: %s.\n\n", strings.Join(ev.Heuristics, ", "))

	fmt.Fprintf(w, "## Tables 2–11\n\n")
	for _, t := range experiments.AllTables(ev) {
		writeTable(w, t)
	}

	fmt.Fprintf(w, "## Figures 1–6\n\n")
	for _, f := range experiments.AllFigures(ev) {
		fmt.Fprintf(w, "```\n%s```\n\n", f)
	}

	if opts.Extensions {
		fmt.Fprintf(w, "## Extension experiments\n\n")
		type ext struct {
			run func() (*stats.Table, error)
		}
		seed := opts.ExtensionSeed
		for _, e := range []ext{
			{func() (*stats.Table, error) { return experiments.OptimalityGap(seed, 10) }},
			{func() (*stats.Table, error) { return experiments.WiderWeightRanges(seed, 4) }},
			{func() (*stats.Table, error) { return experiments.DuplicationGain(seed, 10) }},
			{func() (*stats.Table, error) { return experiments.MetricComparison(seed, 100) }},
			{func() (*stats.Table, error) { return experiments.ExtendedComparison(seed, 10) }},
			{func() (*stats.Table, error) { return experiments.SizeScaling(seed, 5) }},
		} {
			t, err := e.run()
			if err != nil {
				return err
			}
			writeTable(w, t)
		}
	}
	return nil
}

// writeTable renders a stats.Table as a markdown table with its title
// as a sub-heading.
func writeTable(w io.Writer, t *stats.Table) {
	if t.Title != "" {
		fmt.Fprintf(w, "### %s\n\n", t.Title)
	}
	row := func(cells []string, width int) {
		fmt.Fprint(w, "|")
		for i := 0; i < width; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(w, " %s |", strings.ReplaceAll(c, "|", "\\|"))
		}
		fmt.Fprintln(w)
	}
	width := len(t.Columns)
	for _, r := range t.Rows {
		if len(r) > width {
			width = len(r)
		}
	}
	row(t.Columns, width)
	fmt.Fprint(w, "|")
	for i := 0; i < width; i++ {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		row(r, width)
	}
	fmt.Fprintln(w)
}
