package report

import (
	"strings"
	"testing"
	"time"

	"schedcomp/internal/core"
	"schedcomp/internal/corpus"

	_ "schedcomp/internal/heuristics/clans"
	_ "schedcomp/internal/heuristics/dcp"
	_ "schedcomp/internal/heuristics/dls"
	_ "schedcomp/internal/heuristics/dsc"
	_ "schedcomp/internal/heuristics/etf"
	_ "schedcomp/internal/heuristics/ez"
	_ "schedcomp/internal/heuristics/hu"
	_ "schedcomp/internal/heuristics/lc"
	_ "schedcomp/internal/heuristics/mcp"
	_ "schedcomp/internal/heuristics/mh"
)

func TestWriteBasicReport(t *testing.T) {
	c, err := corpus.Generate(corpus.Spec{Seed: 8, GraphsPerSet: 1, MinNodes: 24, MaxNodes: 32})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.Evaluate(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	err = Write(&b, c, ev, Options{Timestamp: time.Unix(0, 0).UTC()})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# Multiprocessor scheduling heuristics",
		"## Tables 2–11",
		"Table 2", "Table 11",
		"## Figures 1–6",
		"Figure 1", "Figure 6",
		"| CLANS |",
		"|---|",
		"Corpus: 60 graphs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "Extension") {
		t.Error("extensions included without being requested")
	}
}

func TestWriteWithExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("extension report in -short mode")
	}
	c, err := corpus.Generate(corpus.Spec{Seed: 9, GraphsPerSet: 1, MinNodes: 24, MaxNodes: 32})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.Evaluate(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	err = Write(&b, c, ev, Options{Title: "T", Extensions: true, ExtensionSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# T",
		"## Extension experiments",
		"optimal parallel time",
		"duplication",
		"Pearson",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("extension report missing %q", want)
		}
	}
}
