package sched

import (
	"schedcomp/internal/dag"
)

// Build turns a placement into a timed schedule under the common
// execution model. Start times are assigned greedily: a task starts as
// soon as (a) all its predecessors' data has arrived (finish time, plus
// edge weight when crossing processors) and (b) its processor has
// finished every task that precedes it in the placement order.
//
// Build commits tasks one at a time, always the ready queue head with
// the smallest feasible start time (ties to the lower processor), so
// the result is deterministic. It returns an error if the placement
// does not cover the graph or if the per-processor orders deadlock
// against the precedence constraints (which cannot happen for orders
// produced by a priority-driven heuristic, but is checked anyway).
func Build(g *dag.Graph, pl *Placement) (*Schedule, error) {
	if err := pl.Check(g); err != nil {
		return nil, err
	}
	// Under the uniform model processor labels are interchangeable, so
	// compact them for dense output (and an accurate processor count).
	pl.Compact()
	// The placement was checked above and Compact preserves validity,
	// so skip BuildWith's re-check.
	return buildWith(g, pl, UniformDelay)
}

// MustBuild is Build for placements known to be valid by construction;
// it panics on error. Used internally by heuristics after their own
// invariants guarantee validity.
func MustBuild(g *dag.Graph, pl *Placement) *Schedule {
	s, err := Build(g, pl)
	if err != nil {
		panic("sched: MustBuild: " + err.Error())
	}
	return s
}
