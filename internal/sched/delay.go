package sched

import (
	"fmt"
	"sync"

	"schedcomp/internal/dag"
	"schedcomp/internal/obs"
)

// Timing-builder instruments. The counts are accumulated in locals
// inside buildWith and flushed once per build, so the inner loop pays
// nothing and a disabled registry costs three atomic loads per call.
var (
	buildCandHits = obs.Default().Counter("sched_build_cand_cache_hits_total",
		"Candidate start times reused from the per-processor cache.")
	buildCandMisses = obs.Default().Counter("sched_build_cand_cache_misses_total",
		"Candidate start times recomputed (dirty processors).")
	buildWakeups = obs.Default().Counter("sched_build_waiter_wakeups_total",
		"Processors re-dirtied because the node their head waited on finished.")
)

// DelayFunc computes the communication delay for a message of the
// given weight sent between two processors. The uniform model of the
// paper is: 0 when from == to, weight otherwise.
type DelayFunc func(from, to int, weight int64) int64

// UniformDelay is the paper's execution model.
func UniformDelay(from, to int, weight int64) int64 {
	if from == to {
		return 0
	}
	return weight
}

// BuildWith is Build under an arbitrary communication delay model —
// used to evaluate placements on non-uniform topologies (rings,
// meshes, hypercubes) in the topology example and benches.
//
// Unlike Build, BuildWith never renumbers processors: with a
// non-uniform delay the processor indices are physical machine
// locations, and compacting them would silently move tasks to
// different network positions. Empty processors therefore count
// toward NumProcs here.
func BuildWith(g *dag.Graph, pl *Placement, delay DelayFunc) (*Schedule, error) {
	if err := pl.Check(g); err != nil {
		return nil, err
	}
	return buildWith(g, pl, delay)
}

// buildScratch holds the timing builder's working arrays. The full
// testbed calls Build once per (graph, heuristic) pair, so the scratch
// is pooled per worker instead of reallocated each time; only the
// resulting Schedule's ByNode escapes.
type buildScratch struct {
	done   []bool
	finish []int64
	head   []int
	free   []int64
	// cand[p] caches processor p's candidate start time (candBlocked
	// when its queue head is not ready or the queue is empty);
	// candDirty marks entries that must be recomputed this round.
	cand      []int64
	candDirty []bool
	// Intrusive waiter lists: waiterHead[v] is the first processor
	// whose queue head is blocked on node v, waiterNext chains the
	// rest. Each processor waits on at most one node at a time.
	waiterHead []int32
	waiterNext []int32
}

// candBlocked marks a processor with no schedulable queue head.
const candBlocked = int64(^uint64(0) >> 1)

var buildPool = sync.Pool{New: func() interface{} { return new(buildScratch) }}

// grow resizes (and zeroes) the scratch for n nodes and p processors.
func (b *buildScratch) grow(n, p int) {
	if cap(b.done) < n {
		b.done = make([]bool, n)
		b.finish = make([]int64, n)
		b.waiterHead = make([]int32, n)
	}
	b.done = b.done[:n]
	b.finish = b.finish[:n]
	b.waiterHead = b.waiterHead[:n]
	for i := range b.done {
		b.done[i] = false
		b.waiterHead[i] = -1
	}
	if cap(b.head) < p {
		b.head = make([]int, p)
		b.free = make([]int64, p)
		b.cand = make([]int64, p)
		b.candDirty = make([]bool, p)
		b.waiterNext = make([]int32, p)
	}
	b.head = b.head[:p]
	b.free = b.free[:p]
	b.cand = b.cand[:p]
	b.candDirty = b.candDirty[:p]
	b.waiterNext = b.waiterNext[:p]
	for i := range b.head {
		b.head[i] = 0
		b.free[i] = 0
		b.candDirty[i] = true
	}
}

// buildWith is BuildWith for placements already known to pass Check.
//
// Rather than rescanning every processor's queue head each round, the
// loop caches each processor's candidate start time and recomputes only
// the entries a commitment can have changed: the committing processor
// itself (its queue advanced and its free time moved) and any processor
// whose head was blocked on the committed node (tracked by the waiter
// lists). A cached candidate cannot go stale any other way — a ready
// head's start time depends only on its (already finished) predecessors
// and its own processor's free time — so the incremental loop commits
// the identical task sequence the full rescan would.
func buildWith(g *dag.Graph, pl *Placement, delay DelayFunc) (*Schedule, error) {
	if delay == nil {
		delay = UniformDelay
	}
	n := g.NumNodes()
	numProcs := len(pl.Order)
	s := &Schedule{Graph: g, ByNode: make([]Assignment, n), NumProcs: numProcs}
	if n == 0 {
		return s, nil
	}
	scratch := buildPool.Get().(*buildScratch)
	defer buildPool.Put(scratch)
	scratch.grow(n, numProcs)
	done := scratch.done
	finish := scratch.finish
	head := scratch.head
	free := scratch.free
	cand := scratch.cand
	candDirty := scratch.candDirty
	waiterHead := scratch.waiterHead
	waiterNext := scratch.waiterNext
	remaining := n
	var candHits, candMisses, wakeups uint64
	for remaining > 0 {
		for p := 0; p < numProcs; p++ {
			if !candDirty[p] {
				candHits++
				continue
			}
			candMisses++
			candDirty[p] = false
			if head[p] >= len(pl.Order[p]) {
				cand[p] = candBlocked
				continue
			}
			v := pl.Order[p][head[p]]
			var start int64
			ready := true
			for _, e := range g.Preds(v) {
				if !done[e.To] {
					// Park p on the first unfinished predecessor; its
					// completion re-dirties the candidate.
					waiterNext[p] = waiterHead[e.To]
					waiterHead[e.To] = int32(p)
					ready = false
					break
				}
				if t := finish[e.To] + delay(pl.Proc[e.To], p, e.Weight); t > start {
					start = t
				}
			}
			if !ready {
				cand[p] = candBlocked
				continue
			}
			if start < free[p] {
				start = free[p]
			}
			cand[p] = start
		}
		// Commit the smallest candidate (ties to the lower processor).
		bestProc := -1
		var bestStart int64
		for p := 0; p < numProcs; p++ {
			if cand[p] == candBlocked {
				continue
			}
			if bestProc == -1 || cand[p] < bestStart {
				bestProc, bestStart = p, cand[p]
			}
		}
		if bestProc == -1 {
			buildCandHits.Add(candHits)
			buildCandMisses.Add(candMisses)
			buildWakeups.Add(wakeups)
			return nil, fmt.Errorf("sched: placement order deadlocks against precedence (%d tasks left)", remaining)
		}
		bestNode := pl.Order[bestProc][head[bestProc]]
		f := bestStart + g.Weight(bestNode)
		s.ByNode[bestNode] = Assignment{Node: bestNode, Proc: bestProc, Start: bestStart, Finish: f}
		done[bestNode] = true
		finish[bestNode] = f
		free[bestProc] = f
		head[bestProc]++
		remaining--
		candDirty[bestProc] = true
		for w := waiterHead[bestNode]; w != -1; w = waiterNext[w] {
			candDirty[w] = true
			wakeups++
		}
		waiterHead[bestNode] = -1
		if f > s.Makespan {
			s.Makespan = f
		}
	}
	buildCandHits.Add(candHits)
	buildCandMisses.Add(candMisses)
	buildWakeups.Add(wakeups)
	return s, nil
}

// ValidateWith checks the schedule under an arbitrary delay model.
func (s *Schedule) ValidateWith(delay DelayFunc) error {
	if delay == nil {
		delay = UniformDelay
	}
	g := s.Graph
	// Hand-built schedules may not cover the graph; guard before
	// indexing ByNode by node ID below.
	if len(s.ByNode) != g.NumNodes() {
		return fmt.Errorf("sched: schedule covers %d nodes, graph has %d", len(s.ByNode), g.NumNodes())
	}
	for v := 0; v < g.NumNodes(); v++ {
		av := s.ByNode[v]
		for _, e := range g.Preds(dag.NodeID(v)) {
			ap := s.ByNode[e.To]
			ready := ap.Finish + delay(ap.Proc, av.Proc, e.Weight)
			if av.Start < ready {
				return fmt.Errorf("sched: node %d starts at %d before data from %d ready at %d",
					v, av.Start, e.To, ready)
			}
		}
	}
	return nil
}
