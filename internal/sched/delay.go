package sched

import (
	"fmt"

	"schedcomp/internal/dag"
)

// DelayFunc computes the communication delay for a message of the
// given weight sent between two processors. The uniform model of the
// paper is: 0 when from == to, weight otherwise.
type DelayFunc func(from, to int, weight int64) int64

// UniformDelay is the paper's execution model.
func UniformDelay(from, to int, weight int64) int64 {
	if from == to {
		return 0
	}
	return weight
}

// BuildWith is Build under an arbitrary communication delay model —
// used to evaluate placements on non-uniform topologies (rings,
// meshes, hypercubes) in the topology example and benches.
//
// Unlike Build, BuildWith never renumbers processors: with a
// non-uniform delay the processor indices are physical machine
// locations, and compacting them would silently move tasks to
// different network positions. Empty processors therefore count
// toward NumProcs here.
func BuildWith(g *dag.Graph, pl *Placement, delay DelayFunc) (*Schedule, error) {
	if delay == nil {
		delay = UniformDelay
	}
	if err := pl.Check(g); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	numProcs := len(pl.Order)
	s := &Schedule{Graph: g, ByNode: make([]Assignment, n), NumProcs: numProcs}
	if n == 0 {
		return s, nil
	}
	done := make([]bool, n)
	finish := make([]int64, n)
	head := make([]int, numProcs)
	free := make([]int64, numProcs)
	remaining := n
	for remaining > 0 {
		bestProc := -1
		var bestStart int64
		var bestNode dag.NodeID
		for p := 0; p < numProcs; p++ {
			if head[p] >= len(pl.Order[p]) {
				continue
			}
			v := pl.Order[p][head[p]]
			var start int64
			ok := true
			for _, e := range g.Preds(v) {
				if !done[e.To] {
					ok = false
					break
				}
				t := finish[e.To] + delay(pl.Proc[e.To], p, e.Weight)
				if t > start {
					start = t
				}
			}
			if !ok {
				continue
			}
			if start < free[p] {
				start = free[p]
			}
			if bestProc == -1 || start < bestStart {
				bestProc, bestStart, bestNode = p, start, v
			}
		}
		if bestProc == -1 {
			return nil, fmt.Errorf("sched: placement order deadlocks against precedence (%d tasks left)", remaining)
		}
		f := bestStart + g.Weight(bestNode)
		s.ByNode[bestNode] = Assignment{Node: bestNode, Proc: bestProc, Start: bestStart, Finish: f}
		done[bestNode] = true
		finish[bestNode] = f
		free[bestProc] = f
		head[bestProc]++
		remaining--
		if f > s.Makespan {
			s.Makespan = f
		}
	}
	return s, nil
}

// ValidateWith checks the schedule under an arbitrary delay model.
func (s *Schedule) ValidateWith(delay DelayFunc) error {
	if delay == nil {
		delay = UniformDelay
	}
	g := s.Graph
	// Hand-built schedules may not cover the graph; guard before
	// indexing ByNode by node ID below.
	if len(s.ByNode) != g.NumNodes() {
		return fmt.Errorf("sched: schedule covers %d nodes, graph has %d", len(s.ByNode), g.NumNodes())
	}
	for v := 0; v < g.NumNodes(); v++ {
		av := s.ByNode[v]
		for _, e := range g.Preds(dag.NodeID(v)) {
			ap := s.ByNode[e.To]
			ready := ap.Finish + delay(ap.Proc, av.Proc, e.Weight)
			if av.Start < ready {
				return fmt.Errorf("sched: node %d starts at %d before data from %d ready at %d",
					v, av.Start, e.To, ready)
			}
		}
	}
	return nil
}
