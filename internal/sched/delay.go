package sched

import (
	"fmt"

	"schedcomp/internal/arena"
	"schedcomp/internal/dag"
	"schedcomp/internal/obs"
)

// Timing-builder instruments. The counts are accumulated in locals
// inside buildWith and flushed once per build, so the inner loop pays
// nothing and a disabled registry costs three atomic loads per call.
var (
	buildCandHits = obs.Default().Counter("sched_build_cand_cache_hits_total",
		"Candidate start times reused from the per-processor cache.")
	buildCandMisses = obs.Default().Counter("sched_build_cand_cache_misses_total",
		"Candidate start times recomputed (dirty processors).")
	buildWakeups = obs.Default().Counter("sched_build_waiter_wakeups_total",
		"Processors re-dirtied because the node their head waited on finished.")
)

// DelayFunc computes the communication delay for a message of the
// given weight sent between two processors. The uniform model of the
// paper is: 0 when from == to, weight otherwise.
type DelayFunc func(from, to int, weight int64) int64

// UniformDelay is the paper's execution model.
func UniformDelay(from, to int, weight int64) int64 {
	if from == to {
		return 0
	}
	return weight
}

// BuildWith is Build under an arbitrary communication delay model —
// used to evaluate placements on non-uniform topologies (rings,
// meshes, hypercubes) in the topology example and benches.
//
// Unlike Build, BuildWith never renumbers processors: with a
// non-uniform delay the processor indices are physical machine
// locations, and compacting them would silently move tasks to
// different network positions. Empty processors therefore count
// toward NumProcs here.
func BuildWith(g *dag.Graph, pl *Placement, delay DelayFunc) (*Schedule, error) {
	if err := pl.Check(g); err != nil {
		return nil, err
	}
	return buildWith(g, pl, delay)
}

// candBlocked marks a processor with no schedulable queue head.
const candBlocked = int64(^uint64(0) >> 1)

// buildWith is BuildWith for placements already known to pass Check.
//
// Rather than rescanning every processor's queue head each round, the
// loop caches each processor's candidate start time and recomputes only
// the entries a commitment can have changed: the committing processor
// itself (its queue advanced and its free time moved) and any processor
// whose head was blocked on the committed node (tracked by the waiter
// lists). A cached candidate cannot go stale any other way — a ready
// head's start time depends only on its (already finished) predecessors
// and its own processor's free time — so the incremental loop commits
// the identical task sequence the full rescan would.
func buildWith(g *dag.Graph, pl *Placement, delay DelayFunc) (*Schedule, error) {
	if delay == nil {
		delay = UniformDelay
	}
	n := g.NumNodes()
	numProcs := len(pl.Order)
	s := &Schedule{Graph: g, ByNode: make([]Assignment, n), NumProcs: numProcs}
	if n == 0 {
		return s, nil
	}
	csr := g.CSR()
	// Working arrays come zeroed from the pooled arena; only the
	// resulting Schedule's ByNode escapes the call.
	scratch := arena.Get()
	defer scratch.Release()
	done := scratch.Bools(n)
	finish := scratch.Int64s(n)
	// waiterHead[v] is the first processor whose queue head is blocked
	// on node v, waiterNext chains the rest (each processor waits on at
	// most one node at a time).
	waiterHead := scratch.Int32s(n)
	head := scratch.Ints(numProcs)
	free := scratch.Int64s(numProcs)
	// cand[p] caches processor p's candidate start time (candBlocked
	// when its queue head is not ready or the queue is empty);
	// candDirty marks entries that must be recomputed this round.
	cand := scratch.Int64s(numProcs)
	candDirty := scratch.Bools(numProcs)
	waiterNext := scratch.Int32s(numProcs)
	for i := range waiterHead {
		waiterHead[i] = -1
	}
	for p := range candDirty {
		candDirty[p] = true
	}
	remaining := n
	var candHits, candMisses, wakeups uint64
	for remaining > 0 {
		for p := 0; p < numProcs; p++ {
			if !candDirty[p] {
				candHits++
				continue
			}
			candMisses++
			candDirty[p] = false
			if head[p] >= len(pl.Order[p]) {
				cand[p] = candBlocked
				continue
			}
			v := pl.Order[p][head[p]]
			var start int64
			ready := true
			preds, ws := csr.Preds(v)
			for j, u := range preds {
				if !done[u] {
					// Park p on the first unfinished predecessor; its
					// completion re-dirties the candidate.
					waiterNext[p] = waiterHead[u]
					waiterHead[u] = int32(p)
					ready = false
					break
				}
				if t := finish[u] + delay(pl.Proc[u], p, ws[j]); t > start {
					start = t
				}
			}
			if !ready {
				cand[p] = candBlocked
				continue
			}
			if start < free[p] {
				start = free[p]
			}
			cand[p] = start
		}
		// Commit the smallest candidate (ties to the lower processor).
		bestProc := -1
		var bestStart int64
		for p := 0; p < numProcs; p++ {
			if cand[p] == candBlocked {
				continue
			}
			if bestProc == -1 || cand[p] < bestStart {
				bestProc, bestStart = p, cand[p]
			}
		}
		if bestProc == -1 {
			buildCandHits.Add(candHits)
			buildCandMisses.Add(candMisses)
			buildWakeups.Add(wakeups)
			return nil, fmt.Errorf("sched: placement order deadlocks against precedence (%d tasks left)", remaining)
		}
		bestNode := pl.Order[bestProc][head[bestProc]]
		f := bestStart + g.Weight(bestNode)
		s.ByNode[bestNode] = Assignment{Node: bestNode, Proc: bestProc, Start: bestStart, Finish: f}
		done[bestNode] = true
		finish[bestNode] = f
		free[bestProc] = f
		head[bestProc]++
		remaining--
		candDirty[bestProc] = true
		for w := waiterHead[bestNode]; w != -1; w = waiterNext[w] {
			candDirty[w] = true
			wakeups++
		}
		waiterHead[bestNode] = -1
		if f > s.Makespan {
			s.Makespan = f
		}
	}
	buildCandHits.Add(candHits)
	buildCandMisses.Add(candMisses)
	buildWakeups.Add(wakeups)
	return s, nil
}

// ValidateWith checks the schedule under an arbitrary delay model.
func (s *Schedule) ValidateWith(delay DelayFunc) error {
	if delay == nil {
		delay = UniformDelay
	}
	g := s.Graph
	// Hand-built schedules may not cover the graph; guard before
	// indexing ByNode by node ID below.
	if len(s.ByNode) != g.NumNodes() {
		return fmt.Errorf("sched: schedule covers %d nodes, graph has %d", len(s.ByNode), g.NumNodes())
	}
	csr := g.CSR()
	for v := 0; v < g.NumNodes(); v++ {
		av := s.ByNode[v]
		preds, ws := csr.Preds(dag.NodeID(v))
		for j, u := range preds {
			ap := s.ByNode[u]
			ready := ap.Finish + delay(ap.Proc, av.Proc, ws[j])
			if av.Start < ready {
				return fmt.Errorf("sched: node %d starts at %d before data from %d ready at %d",
					v, av.Start, u, ready)
			}
		}
	}
	return nil
}
