package sched

import (
	"testing"

	"schedcomp/internal/dag"
)

func TestUniformDelay(t *testing.T) {
	if UniformDelay(2, 2, 100) != 0 {
		t.Error("same-proc delay should be 0")
	}
	if UniformDelay(0, 1, 100) != 100 {
		t.Error("cross-proc delay should be the weight")
	}
}

func TestBuildWithNilDelayIsUniform(t *testing.T) {
	g := chain3()
	pl := NewPlacement(3)
	pl.Assign(0, 0)
	pl.Assign(1, 1)
	pl.Assign(2, 1)
	a, err := BuildWith(g, pl, nil)
	if err != nil {
		t.Fatal(err)
	}
	pl2 := NewPlacement(3)
	pl2.Assign(0, 0)
	pl2.Assign(1, 1)
	pl2.Assign(2, 1)
	b, err := Build(g, pl2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Errorf("nil delay %d != uniform %d", a.Makespan, b.Makespan)
	}
}

func TestBuildWithHopDelay(t *testing.T) {
	// Delay doubles the weight across processors: node 1 on the other
	// processor now waits 10 + 2*5 = 20.
	g := chain3()
	pl := NewPlacement(3)
	pl.Assign(0, 0)
	pl.Assign(1, 1)
	pl.Assign(2, 1)
	double := func(from, to int, w int64) int64 {
		if from == to {
			return 0
		}
		return 2 * w
	}
	s, err := BuildWith(g, pl, double)
	if err != nil {
		t.Fatal(err)
	}
	if s.ByNode[1].Start != 20 {
		t.Errorf("node 1 start = %d, want 20", s.ByNode[1].Start)
	}
	if err := s.ValidateWith(double); err != nil {
		t.Error(err)
	}
	// Under the default (cheaper) model it also validates...
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	// ...but tightening the delay beyond what was paid must fail.
	triple := func(from, to int, w int64) int64 {
		if from == to {
			return 0
		}
		return 3 * w
	}
	if err := s.ValidateWith(triple); err == nil {
		t.Error("expected violation under a stricter delay model")
	}
}

// Property: increasing every communication delay can never shrink the
// makespan of a fixed placement under the greedy builder.
func TestBuildWithDelayMonotonic(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g := chain3()
		// Random-ish placements over the 3-node chain are too small to
		// be interesting; build a richer graph.
		g = richGraph(seed)
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		pl1 := NewPlacement(g.NumNodes())
		pl2 := NewPlacement(g.NumNodes())
		for i, v := range order {
			p := (int(v) + i) % 3
			pl1.Assign(v, p)
			pl2.Assign(v, p)
		}
		cheap, err := BuildWith(g, pl1, UniformDelay)
		if err != nil {
			t.Fatal(err)
		}
		dear, err := BuildWith(g, pl2, func(a, b int, w int64) int64 {
			if a == b {
				return 0
			}
			return 2*w + 3
		})
		if err != nil {
			t.Fatal(err)
		}
		if dear.Makespan < cheap.Makespan {
			t.Fatalf("seed %d: dearer delays shrank makespan %d -> %d",
				seed, cheap.Makespan, dear.Makespan)
		}
	}
}

// richGraph builds a deterministic pseudo-random DAG from a seed.
func richGraph(seed int64) *dag.Graph {
	g := dag.New("rich")
	n := 12 + int(seed%8)
	for i := 0; i < n; i++ {
		g.AddNode(int64(1 + (seed+int64(i)*7)%40))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if (seed+int64(i*31+j*17))%5 == 0 {
				g.MustAddEdge(dag.NodeID(i), dag.NodeID(j), int64(1+(seed+int64(i+j))%30))
			}
		}
	}
	return g
}

func TestMustBuildPanicsOnBadPlacement(t *testing.T) {
	g := chain3()
	pl := NewPlacement(3)
	pl.Assign(0, 0)
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic")
		}
	}()
	MustBuild(g, pl)
}
