package sched_test

import (
	"strings"
	"testing"

	"schedcomp/internal/dag"
	"schedcomp/internal/sched"
	"schedcomp/internal/topology"
)

// chainAcrossRing builds the two-node chain a(10) -> b(5) with edge
// weight 4 and a placement that puts a on processor 0 and b on
// processor 2. On Ring(4) those processors are two hops apart, so the
// store-and-forward delay is 2*4 = 8, twice the uniform model's 4.
func chainAcrossRing() (*dag.Graph, *sched.Placement, *topology.Network) {
	g := dag.New("ringchain")
	a := g.AddNode(10)
	b := g.AddNode(5)
	g.MustAddEdge(a, b, 4)
	pl := sched.NewPlacement(2)
	pl.Assign(a, 0)
	pl.Assign(b, 2)
	return g, pl, topology.Ring(4)
}

func TestBuildWithTopologyDelayValidates(t *testing.T) {
	g, pl, net := chainAcrossRing()
	s, err := sched.BuildWith(g, pl, net.Delay)
	if err != nil {
		t.Fatal(err)
	}
	// Two hops at weight 4 each: b may start only at 10 + 8 = 18.
	if got := s.ByNode[1].Start; got != 18 {
		t.Errorf("b starts at %d under ring delay, want 18", got)
	}
	if s.Makespan != 23 {
		t.Errorf("makespan %d, want 23", s.Makespan)
	}
	if err := s.ValidateWith(net.Delay); err != nil {
		t.Errorf("schedule built under ring delay fails its own model: %v", err)
	}
	// The ring model dominates the uniform one, so the schedule is also
	// valid under uniform delay (with slack).
	if err := s.ValidateWith(sched.UniformDelay); err != nil {
		t.Errorf("ring-delay schedule invalid under uniform delay: %v", err)
	}
}

func TestValidateWithRejectsUniformOnlySchedule(t *testing.T) {
	g, _, net := chainAcrossRing()
	// Hand-build the schedule a uniform-model scheduler would produce:
	// b starts at 10 + 4 = 14. Correct under UniformDelay, too early
	// under the two-hop ring delay (data ready at 18).
	s := &sched.Schedule{
		Graph: g,
		ByNode: []sched.Assignment{
			{Node: 0, Proc: 0, Start: 0, Finish: 10},
			{Node: 1, Proc: 2, Start: 14, Finish: 19},
		},
		NumProcs: 3,
		Makespan: 19,
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("schedule should be valid under the uniform model: %v", err)
	}
	err := s.ValidateWith(net.Delay)
	if err == nil {
		t.Fatal("ValidateWith accepted a schedule that violates the ring delay")
	}
	if !strings.Contains(err.Error(), "before data") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestValidateWithLatencyModel(t *testing.T) {
	g, pl, net := chainAcrossRing()
	net.SetPerHopLatency(3)
	// Per-hop latency raises the transfer to 2*(4+3) = 14; b may start
	// at 24.
	s, err := sched.BuildWith(g, pl, net.Delay)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ByNode[1].Start; got != 24 {
		t.Errorf("b starts at %d with per-hop latency, want 24", got)
	}
	if err := s.ValidateWith(net.Delay); err != nil {
		t.Errorf("latency-model schedule fails its own model: %v", err)
	}
	// The same schedule without latency headroom must fail the
	// stricter check in reverse: the 18-start schedule from the plain
	// ring is invalid once latency is added.
	plain, err := sched.BuildWith(g, pl, topology.Ring(4).Delay)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.ValidateWith(net.Delay); err == nil {
		t.Error("ValidateWith accepted a schedule lacking per-hop latency headroom")
	}
}
