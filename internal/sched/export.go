package sched

import (
	"encoding/json"
	"fmt"
	"io"
)

// Export formats for schedules, so results can be inspected outside
// the testbed (spreadsheets, Chrome's about:tracing / Perfetto).

// WriteCSV writes the schedule as CSV rows: node, proc, start, finish,
// weight. Rows are ordered by processor then start time.
func (s *Schedule) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "node,proc,start,finish,weight"); err != nil {
		return err
	}
	for p := 0; p < s.NumProcs; p++ {
		for _, a := range s.ProcTasks(p) {
			if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d\n",
				a.Node, a.Proc, a.Start, a.Finish, s.Graph.Weight(a.Node)); err != nil {
				return err
			}
		}
	}
	return nil
}

// traceEvent is one Chrome trace-format "complete" event.
type traceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`
	Dur  int64  `json:"dur"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
}

// WriteTrace writes the schedule in the Chrome trace event format
// (load via chrome://tracing or Perfetto): one timeline row per
// processor, one complete event per task, time units mapping one task
// time unit to one microsecond.
func (s *Schedule) WriteTrace(w io.Writer) error {
	events := make([]traceEvent, 0, len(s.ByNode))
	for p := 0; p < s.NumProcs; p++ {
		for _, a := range s.ProcTasks(p) {
			events = append(events, traceEvent{
				Name: fmt.Sprintf("task %d", a.Node),
				Cat:  "task",
				Ph:   "X",
				Ts:   a.Start,
				Dur:  a.Finish - a.Start,
				Pid:  0,
				Tid:  a.Proc,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{events})
}

// MarshalJSON encodes the schedule compactly: makespan, processor
// count, and per-task assignments.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	type row struct {
		Node   int32 `json:"node"`
		Proc   int   `json:"proc"`
		Start  int64 `json:"start"`
		Finish int64 `json:"finish"`
	}
	out := struct {
		Graph    string `json:"graph,omitempty"`
		Makespan int64  `json:"makespan"`
		Procs    int    `json:"procs"`
		Tasks    []row  `json:"tasks"`
	}{Makespan: s.Makespan, Procs: s.NumProcs}
	if s.Graph != nil {
		out.Graph = s.Graph.Name()
	}
	for _, a := range s.ByNode {
		out.Tasks = append(out.Tasks, row{Node: int32(a.Node), Proc: a.Proc, Start: a.Start, Finish: a.Finish})
	}
	return json.Marshal(out)
}
