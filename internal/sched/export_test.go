package sched

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func exampleSchedule(t *testing.T) *Schedule {
	t.Helper()
	g := chain3()
	pl := NewPlacement(3)
	pl.Assign(0, 0)
	pl.Assign(1, 0)
	pl.Assign(2, 1)
	s, err := Build(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWriteCSV(t *testing.T) {
	s := exampleSchedule(t)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 tasks
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "node,proc,start,finish,weight" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(out, "0,0,0,10,10") {
		t.Errorf("missing first row:\n%s", out)
	}
}

func TestWriteTrace(t *testing.T) {
	s := exampleSchedule(t)
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.TraceEvents) != 3 {
		t.Fatalf("events = %d", len(decoded.TraceEvents))
	}
	for _, e := range decoded.TraceEvents {
		if e["ph"] != "X" {
			t.Errorf("event phase = %v", e["ph"])
		}
	}
}

func TestScheduleJSON(t *testing.T) {
	s := exampleSchedule(t)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Makespan int64 `json:"makespan"`
		Procs    int   `json:"procs"`
		Tasks    []struct {
			Node int32 `json:"node"`
		} `json:"tasks"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Makespan != s.Makespan || decoded.Procs != s.NumProcs || len(decoded.Tasks) != 3 {
		t.Errorf("decoded = %+v", decoded)
	}
}
