package sched_test

import (
	"testing"

	"schedcomp/internal/dag"
	"schedcomp/internal/sched"
)

// byteAt reads raw cyclically so any input length drives the whole
// schedule construction.
func byteAt(raw []byte, i int) byte {
	if len(raw) == 0 {
		return 0
	}
	return raw[i%len(raw)]
}

// FuzzValidate builds a small DAG and an arbitrary (usually bogus)
// schedule over it from fuzz input, then requires Validate and
// ValidateWith to classify it — return nil or an error — without ever
// panicking. Assignments are corrupted on purpose: wrong node IDs,
// negative processors and times, truncated ByNode slices.
func FuzzValidate(f *testing.F) {
	f.Add(uint8(4), uint64(0b1011), int8(2), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(uint8(0), uint64(0), int8(0), []byte{})
	f.Add(uint8(7), ^uint64(0), int8(-3), []byte{255, 7, 128, 9, 0, 64})
	f.Add(uint8(3), uint64(1), int8(127), []byte{5})

	f.Fuzz(func(t *testing.T, nNodes uint8, edgeBits uint64, procs int8, raw []byte) {
		n := int(nNodes % 8)
		g := dag.New("fuzz")
		for i := 0; i < n; i++ {
			g.AddNode(int64(1 + byteAt(raw, i)%16))
		}
		bit := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if edgeBits>>(uint(bit)%64)&1 == 1 {
					g.MustAddEdge(dag.NodeID(i), dag.NodeID(j), int64(byteAt(raw, bit)%8))
				}
				bit++
			}
		}

		s := &sched.Schedule{Graph: g, NumProcs: int(procs), ByNode: make([]sched.Assignment, n)}
		for i := range s.ByNode {
			node := dag.NodeID(i)
			if byteAt(raw, 3*i)%7 == 0 {
				node = dag.NodeID(int8(byteAt(raw, 3*i+1))) // corrupt the node ID
			}
			start := int64(int8(byteAt(raw, 3*i+1)))
			s.ByNode[i] = sched.Assignment{
				Node:   node,
				Proc:   int(int8(byteAt(raw, 3*i))),
				Start:  start,
				Finish: start + int64(int8(byteAt(raw, 3*i+2))),
			}
		}
		if n > 0 && byteAt(raw, n)%5 == 0 {
			s.ByNode = s.ByNode[:n-1] // schedule that does not cover the graph
		}
		s.Makespan = int64(int8(byteAt(raw, n+1)))

		ring := func(from, to int, w int64) int64 {
			d := from - to
			if d < 0 {
				d = -d
			}
			return w * int64(1+d)
		}
		// Errors are the expected outcome on corrupt schedules; the
		// property under test is only that none of these panic.
		_ = s.Validate()
		_ = s.ValidateWith(nil)
		_ = s.ValidateWith(ring)
	})
}
