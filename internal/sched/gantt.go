package sched

import (
	"fmt"
	"strings"
)

// Gantt renders the schedule as a fixed-width text chart, one row per
// processor, suitable for terminals. width is the number of character
// cells used for the time axis (minimum 20).
func (s *Schedule) Gantt(width int) string {
	if width < 20 {
		width = 20
	}
	if s.Makespan == 0 || s.NumProcs == 0 {
		return "(empty schedule)\n"
	}
	scale := float64(width) / float64(s.Makespan)
	var b strings.Builder
	fmt.Fprintf(&b, "parallel time %d on %d processor(s); speedup %.2f, efficiency %.2f\n",
		s.Makespan, s.NumProcs, s.Speedup(), s.Efficiency())
	for p := 0; p < s.NumProcs; p++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		labels := make([]string, 0, 4)
		for _, a := range s.ProcTasks(p) {
			from := int(float64(a.Start) * scale)
			to := int(float64(a.Finish) * scale)
			if to <= from {
				to = from + 1
			}
			if to > width {
				to = width
			}
			for i := from; i < to; i++ {
				row[i] = '#'
			}
			labels = append(labels, fmt.Sprintf("%d@[%d,%d)", a.Node, a.Start, a.Finish))
		}
		fmt.Fprintf(&b, "P%-3d |%s| %s\n", p, string(row), strings.Join(labels, " "))
	}
	return b.String()
}

// Table renders the schedule as an aligned start-time table, one line
// per task in start-time order.
func (s *Schedule) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-6s %-10s %-10s\n", "node", "proc", "start", "finish")
	for p := 0; p < s.NumProcs; p++ {
		for _, a := range s.ProcTasks(p) {
			fmt.Fprintf(&b, "%-6d %-6d %-10d %-10d\n", a.Node, a.Proc, a.Start, a.Finish)
		}
	}
	return b.String()
}
