// Package sched defines the common schedule model shared by all five
// heuristics: a Placement (which processor runs each task, and in what
// order), the greedy timing builder that turns a placement into start
// and finish times under the paper's execution model, schedule
// validation, performance metrics, and a textual Gantt chart.
//
// Timing model (paper §2): homogeneous processors, fully connected;
// tasks on the same processor communicate for free; tasks on different
// processors pay the PDG edge weight, independent of which processors;
// communication overlaps computation; no task duplication.
package sched

import (
	"fmt"

	"schedcomp/internal/arena"
	"schedcomp/internal/dag"
)

// Placement maps every node of a graph to a processor and fixes the
// execution order on each processor. It is the only thing a heuristic
// must produce; timing is computed by Build so that all heuristics are
// measured under the identical execution model.
type Placement struct {
	// Proc[n] is the processor assigned to node n.
	Proc []int
	// Order[p] lists the nodes of processor p in execution order.
	Order [][]dag.NodeID
}

// NewPlacement returns a placement for n nodes and no processors yet;
// all Proc entries start at -1 (unassigned).
func NewPlacement(n int) *Placement {
	pl := &Placement{Proc: make([]int, n)}
	for i := range pl.Proc {
		pl.Proc[i] = -1
	}
	return pl
}

// Assign appends node v to processor p's order, growing the processor
// set as needed. Assign panics if v was already assigned: a heuristic
// placing a node twice is a bug, never a recoverable condition.
func (pl *Placement) Assign(v dag.NodeID, p int) {
	if pl.Proc[v] != -1 {
		panic(fmt.Sprintf("sched: node %d assigned twice", v))
	}
	if p < 0 {
		panic(fmt.Sprintf("sched: negative processor %d", p))
	}
	for len(pl.Order) <= p {
		pl.Order = append(pl.Order, nil)
	}
	pl.Proc[v] = p
	pl.Order[p] = append(pl.Order[p], v)
}

// NumProcs returns the number of processors with at least one task.
func (pl *Placement) NumProcs() int {
	n := 0
	for _, q := range pl.Order {
		if len(q) > 0 {
			n++
		}
	}
	return n
}

// Compact renumbers processors so that used processors are 0..P-1 with
// empty ones removed, preserving relative order. It returns pl for
// chaining.
func (pl *Placement) Compact() *Placement {
	scratch := arena.Get()
	defer scratch.Release()
	remap := scratch.Ints(len(pl.Order))
	var orders [][]dag.NodeID
	for p, q := range pl.Order {
		if len(q) == 0 {
			remap[p] = -1
			continue
		}
		remap[p] = len(orders)
		orders = append(orders, q)
	}
	for v, p := range pl.Proc {
		if p >= 0 {
			pl.Proc[v] = remap[p]
		}
	}
	pl.Order = orders
	return pl
}

// Check verifies that the placement covers each node of g exactly once
// and that Proc and Order agree.
func (pl *Placement) Check(g *dag.Graph) error {
	n := g.NumNodes()
	if len(pl.Proc) != n {
		return fmt.Errorf("sched: placement for %d nodes, graph has %d", len(pl.Proc), n)
	}
	scratch := arena.Get()
	defer scratch.Release()
	seen := scratch.Bools(n)
	for p, q := range pl.Order {
		for _, v := range q {
			if int(v) < 0 || int(v) >= n {
				return fmt.Errorf("sched: order references node %d outside graph", v)
			}
			if seen[v] {
				return fmt.Errorf("sched: node %d appears twice in orders", v)
			}
			seen[v] = true
			if pl.Proc[v] != p {
				return fmt.Errorf("sched: node %d in order of proc %d but Proc says %d", v, p, pl.Proc[v])
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			return fmt.Errorf("sched: node %d not placed", v)
		}
	}
	return nil
}

// Serial returns the placement that runs the whole graph on a single
// processor in topological order. It is the fallback used by CLANS'
// speedup guard and a baseline in the benches.
func Serial(g *dag.Graph) (*Placement, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	pl := NewPlacement(g.NumNodes())
	for _, v := range order {
		pl.Assign(v, 0)
	}
	return pl, nil
}
