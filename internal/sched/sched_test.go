package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"schedcomp/internal/dag"
)

// chain3 builds 0 -> 1 -> 2 with weights 10,20,30 and edge weights 5,7.
func chain3() *dag.Graph {
	g := dag.New("chain3")
	a := g.AddNode(10)
	b := g.AddNode(20)
	c := g.AddNode(30)
	g.MustAddEdge(a, b, 5)
	g.MustAddEdge(b, c, 7)
	return g
}

// fork builds 0 -> {1, 2} with weights 10,20,30, edges 5 and 6.
func fork() *dag.Graph {
	g := dag.New("fork")
	a := g.AddNode(10)
	b := g.AddNode(20)
	c := g.AddNode(30)
	g.MustAddEdge(a, b, 5)
	g.MustAddEdge(a, c, 6)
	return g
}

func TestSerialPlacement(t *testing.T) {
	g := chain3()
	pl, err := Serial(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 60 {
		t.Errorf("serial makespan = %d, want 60", s.Makespan)
	}
	if s.NumProcs != 1 {
		t.Errorf("NumProcs = %d, want 1", s.NumProcs)
	}
	if sp := s.Speedup(); math.Abs(sp-1.0) > 1e-12 {
		t.Errorf("serial speedup = %v, want 1", sp)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBuildPaysCommAcrossProcs(t *testing.T) {
	g := fork()
	pl := NewPlacement(3)
	pl.Assign(0, 0)
	pl.Assign(1, 0) // same proc: no comm
	pl.Assign(2, 1) // cross: pays 6
	s, err := Build(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ByNode[1].Start; got != 10 {
		t.Errorf("node 1 start = %d, want 10 (no comm)", got)
	}
	if got := s.ByNode[2].Start; got != 16 {
		t.Errorf("node 2 start = %d, want 16 (10 + edge 6)", got)
	}
	if s.Makespan != 46 {
		t.Errorf("makespan = %d, want 46", s.Makespan)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBuildRespectsProcessorOrder(t *testing.T) {
	// Two independent tasks forced onto one processor run sequentially
	// in placement order.
	g := dag.New("indep")
	a := g.AddNode(10)
	b := g.AddNode(20)
	_ = a
	_ = b
	pl := NewPlacement(2)
	pl.Assign(1, 0)
	pl.Assign(0, 0)
	s, err := Build(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	if s.ByNode[1].Start != 0 || s.ByNode[0].Start != 20 {
		t.Errorf("order not respected: %+v", s.ByNode)
	}
}

func TestBuildDetectsDeadlock(t *testing.T) {
	// 0 -> 1 but the placement runs 1 before 0 on the same processor.
	g := dag.New("deadlock")
	a := g.AddNode(10)
	b := g.AddNode(10)
	g.MustAddEdge(a, b, 1)
	pl := NewPlacement(2)
	pl.Assign(b, 0)
	pl.Assign(a, 0)
	if _, err := Build(g, pl); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestBuildRejectsIncompletePlacement(t *testing.T) {
	g := chain3()
	pl := NewPlacement(3)
	pl.Assign(0, 0)
	pl.Assign(1, 0)
	// node 2 unplaced
	if _, err := Build(g, pl); err == nil {
		t.Fatal("expected error for unplaced node")
	}
}

func TestPlacementAssignTwicePanics(t *testing.T) {
	pl := NewPlacement(1)
	pl.Assign(0, 0)
	defer func() {
		if recover() == nil {
			t.Error("double Assign did not panic")
		}
	}()
	pl.Assign(0, 1)
}

func TestPlacementCompact(t *testing.T) {
	pl := NewPlacement(2)
	pl.Assign(0, 3)
	pl.Assign(1, 7)
	pl.Compact()
	if pl.NumProcs() != 2 {
		t.Errorf("NumProcs = %d, want 2", pl.NumProcs())
	}
	if pl.Proc[0] != 0 || pl.Proc[1] != 1 {
		t.Errorf("Proc = %v, want [0 1]", pl.Proc)
	}
	if len(pl.Order) != 2 {
		t.Errorf("Order lanes = %d, want 2", len(pl.Order))
	}
}

func TestPlacementCheckCatchesMismatch(t *testing.T) {
	g := chain3()
	pl := NewPlacement(3)
	pl.Assign(0, 0)
	pl.Assign(1, 0)
	pl.Assign(2, 1)
	pl.Proc[2] = 0 // corrupt: Proc disagrees with Order
	if err := pl.Check(g); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestEfficiency(t *testing.T) {
	g := fork()
	pl := NewPlacement(3)
	pl.Assign(0, 0)
	pl.Assign(1, 1)
	pl.Assign(2, 2)
	s, err := Build(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Speedup() / 3
	if math.Abs(s.Efficiency()-want) > 1e-12 {
		t.Errorf("Efficiency = %v, want %v", s.Efficiency(), want)
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	g := fork()
	pl := NewPlacement(3)
	pl.Assign(0, 0)
	pl.Assign(1, 0)
	pl.Assign(2, 0)
	s, err := Build(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	s.ByNode[2].Start = 5 // force overlap with node 0
	s.ByNode[2].Finish = 35
	if err := s.Validate(); err == nil {
		t.Fatal("expected overlap/precedence error")
	}
}

func TestValidateCatchesCommViolation(t *testing.T) {
	g := chain3()
	pl := NewPlacement(3)
	pl.Assign(0, 0)
	pl.Assign(1, 1)
	pl.Assign(2, 1)
	s, err := Build(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	s.ByNode[1].Start = 10 // ignores the 5-unit edge from proc 0
	s.ByNode[1].Finish = 30
	if err := s.Validate(); err == nil {
		t.Fatal("expected communication violation")
	}
}

func TestGanttRenders(t *testing.T) {
	g := chain3()
	pl, _ := Serial(g)
	s, _ := Build(g, pl)
	out := s.Gantt(40)
	if out == "" || len(out) < 10 {
		t.Error("Gantt output empty")
	}
	tbl := s.Table()
	if tbl == "" {
		t.Error("Table output empty")
	}
}

func TestEmptyGraphSchedule(t *testing.T) {
	g := dag.New("empty")
	pl, err := Serial(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 0 {
		t.Errorf("empty makespan = %d", s.Makespan)
	}
}

// randomDAG as in the dag package tests: edges go low ID -> high ID.
func randomDAG(rng *rand.Rand, n int, density float64) *dag.Graph {
	g := dag.New("random")
	for i := 0; i < n; i++ {
		g.AddNode(int64(1 + rng.Intn(100)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				g.MustAddEdge(dag.NodeID(i), dag.NodeID(j), int64(rng.Intn(50)))
			}
		}
	}
	return g
}

// Property: a random topologically-ordered placement always builds to
// a schedule that passes validation, and the serial placement always
// has speedup exactly 1.
func TestQuickBuildValidates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(30), 0.25)
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		nprocs := 1 + rng.Intn(4)
		pl := NewPlacement(g.NumNodes())
		for _, v := range order {
			pl.Assign(v, rng.Intn(nprocs))
		}
		s, err := Build(g, pl)
		if err != nil {
			return false
		}
		if s.Validate() != nil {
			return false
		}
		serial, err := Serial(g)
		if err != nil {
			return false
		}
		ss, err := Build(g, serial)
		if err != nil {
			return false
		}
		return ss.Makespan == g.SerialTime()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
