package sched

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"schedcomp/internal/dag"
)

// Assignment records where and when one task executes.
type Assignment struct {
	Node   dag.NodeID
	Proc   int
	Start  int64
	Finish int64
}

// Schedule is a fully timed assignment of a graph's tasks to
// processors.
type Schedule struct {
	Graph *dag.Graph
	// ByNode[n] is the assignment of node n.
	ByNode []Assignment
	// NumProcs is the number of processors used (dense 0..NumProcs-1).
	NumProcs int
	// Makespan is the parallel time: the maximum finish time.
	Makespan int64
}

// ParallelTime returns the schedule makespan, the paper's objective.
func (s *Schedule) ParallelTime() int64 { return s.Makespan }

// Speedup returns serial time / parallel time. A value below 1 means
// the schedule retards execution relative to one processor.
func (s *Schedule) Speedup() float64 {
	if s.Makespan == 0 {
		return 0
	}
	return float64(s.Graph.SerialTime()) / float64(s.Makespan)
}

// Efficiency returns Speedup / NumProcs: the average fraction of time
// the used processors are busy doing useful work.
func (s *Schedule) Efficiency() float64 {
	if s.NumProcs == 0 {
		return 0
	}
	return s.Speedup() / float64(s.NumProcs)
}

// ProcTasks returns the assignments of processor p sorted by start
// time.
func (s *Schedule) ProcTasks(p int) []Assignment {
	var out []Assignment
	for _, a := range s.ByNode {
		if a.Proc == p {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Validate checks the schedule against the paper's execution model:
//
//  1. every node is assigned exactly once, with Finish = Start + weight;
//  2. tasks on the same processor do not overlap;
//  3. every task starts no earlier than each predecessor's finish, plus
//     the edge weight when the two run on different processors.
func (s *Schedule) Validate() error {
	g := s.Graph
	n := g.NumNodes()
	if len(s.ByNode) != n {
		return fmt.Errorf("sched: schedule covers %d nodes, graph has %d", len(s.ByNode), n)
	}
	for i, a := range s.ByNode {
		if int(a.Node) != i {
			return fmt.Errorf("sched: ByNode[%d] holds node %d", i, a.Node)
		}
		if a.Proc < 0 || a.Proc >= s.NumProcs {
			return fmt.Errorf("sched: node %d on processor %d outside [0,%d)", i, a.Proc, s.NumProcs)
		}
		if a.Start < 0 {
			return fmt.Errorf("sched: node %d starts at negative time %d", i, a.Start)
		}
		if a.Finish != a.Start+g.Weight(a.Node) {
			return fmt.Errorf("sched: node %d finish %d != start %d + weight %d",
				i, a.Finish, a.Start, g.Weight(a.Node))
		}
		if a.Finish > s.Makespan {
			return fmt.Errorf("sched: node %d finishes at %d beyond makespan %d", i, a.Finish, s.Makespan)
		}
	}
	// No overlap per processor: one pass over the assignments sorted
	// by (processor, start) rather than a per-processor scan of the
	// whole node list (Validate runs once per schedule on the testbed
	// hot path).
	byProc := make([]Assignment, n)
	copy(byProc, s.ByNode)
	slices.SortFunc(byProc, func(a, b Assignment) int {
		if a.Proc != b.Proc {
			return a.Proc - b.Proc
		}
		return cmp.Compare(a.Start, b.Start)
	})
	for i := 1; i < len(byProc); i++ {
		prev, cur := byProc[i-1], byProc[i]
		if cur.Proc == prev.Proc && cur.Start < prev.Finish {
			return fmt.Errorf("sched: processor %d overlap: node %d [%d,%d) vs node %d [%d,%d)",
				cur.Proc, prev.Node, prev.Start, prev.Finish,
				cur.Node, cur.Start, cur.Finish)
		}
	}
	// Precedence + communication.
	for v := 0; v < n; v++ {
		av := s.ByNode[v]
		for _, e := range g.Preds(dag.NodeID(v)) {
			ap := s.ByNode[e.To]
			ready := ap.Finish
			if ap.Proc != av.Proc {
				ready += e.Weight
			}
			if av.Start < ready {
				return fmt.Errorf("sched: node %d starts at %d before data from %d ready at %d",
					v, av.Start, e.To, ready)
			}
		}
	}
	return nil
}
