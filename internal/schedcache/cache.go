// Package schedcache is an in-process, content-addressed cache of
// computed schedules. Entries are keyed by the canonical graph
// fingerprint (dag.CanonicalHash — isomorphism-stable and name-blind),
// the heuristic name, and the processor count, so resubmitting the
// same task graph under different node labels or a different name
// still hits.
//
// The cache is sharded (2^k shards, each with its own mutex, LRU list
// and lookup map) so that concurrent requests rarely contend, bounded
// by both entry count and approximate resident bytes, and deduplicates
// concurrent identical requests with per-key singleflight: one caller
// computes, the rest wait and share the result.
//
// Soundness never rests on the fingerprint being collision-free: every
// hit compares the requester's canonical encoding against the stored
// one byte-for-byte, and a mismatch (a SHA-256 collision between
// different graphs, or corruption) is counted and served by an
// uncached compute rather than a wrong schedule.
package schedcache

import (
	"bytes"
	"container/list"
	"context"
	"errors"
	"sync"

	"schedcomp/internal/dag"
	"schedcomp/internal/obs"
	"schedcomp/internal/sched"
)

// Key identifies one cache entry: what graph, scheduled how.
type Key struct {
	// Fingerprint is the graph's canonical content hash.
	Fingerprint dag.Fingerprint
	// Heuristic is the registered heuristic name.
	Heuristic string
	// NProcs is the requested processor bound; 0 means the heuristic
	// chooses (the only mode the serving layer exposes today, but the
	// key carves out the dimension so a later bounded-processors API
	// cannot alias entries).
	NProcs int
}

// Status reports how a Do call was satisfied.
type Status uint8

const (
	// Miss: this call computed the schedule (and, absent errors,
	// stored it).
	Miss Status = iota
	// Hit: served from a stored entry without computing.
	Hit
	// Coalesced: waited on a concurrent identical request and shared
	// its result; nothing was computed by this call.
	Coalesced
)

func (s Status) String() string {
	switch s {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// Config sizes a Cache. Zero values select the defaults.
type Config struct {
	// Shards is the number of independent shards, rounded up to a
	// power of two. Default 16.
	Shards int
	// MaxEntries bounds the total number of cached schedules across
	// all shards. Default 4096.
	MaxEntries int
	// MaxBytes bounds the approximate resident size of cached
	// schedules and encodings across all shards. Default 64 MiB.
	MaxBytes int64
}

const (
	defaultShards  = 16
	defaultEntries = 4096
	defaultBytes   = 64 << 20
)

// entry is one cached schedule. enc is an owned copy of the canonical
// encoding (never a shared view of a graph's analysis cache); sched is
// in canonical index space and shared read-only with every caller, as
// is meta (opaque compute-provided provenance, e.g. the anytime tier's
// proven bound).
type entry struct {
	key   Key
	enc   []byte
	sched *sched.Schedule
	meta  any
	bytes int64
}

// flight is one in-progress computation that concurrent callers of the
// same key wait on.
type flight struct {
	done chan struct{}
	// Written exactly once before done is closed.
	enc   []byte
	sched *sched.Schedule
	meta  any
	err   error
}

type shard struct {
	mu      sync.Mutex
	lru     *list.List // of *entry; front = most recently used
	byKey   map[Key]*list.Element
	flights map[Key]*flight
	bytes   int64

	maxEntries int
	maxBytes   int64
}

// Cache is a sharded content-addressed schedule cache. It is safe for
// concurrent use.
type Cache struct {
	shards []*shard
	mask   uint64

	entries *obs.Gauge
	size    *obs.Gauge

	evictions  *obs.Counter
	collisions *obs.Counter

	// Per-heuristic hit/miss/coalesced counters, cached so the hot
	// path skips the registry's mutex. The heuristic label set is the
	// fixed registry of five paper heuristics — bounded cardinality.
	perHeuristic sync.Map // string -> *heuristicCounters
}

type heuristicCounters struct {
	hits, misses, coalesced *obs.Counter
}

// New returns a cache sized by cfg, instrumented on the default obs
// registry.
func New(cfg Config) *Cache {
	shards := cfg.Shards
	if shards <= 0 {
		shards = defaultShards
	}
	// Round up to a power of two so shard selection is a mask.
	n := 1
	for n < shards {
		n <<= 1
	}
	maxEntries := cfg.MaxEntries
	if maxEntries <= 0 {
		maxEntries = defaultEntries
	}
	maxBytes := cfg.MaxBytes
	if maxBytes <= 0 {
		maxBytes = defaultBytes
	}
	if maxEntries < n {
		// Fewer entries than shards: shrink the shard count so every
		// shard can hold at least one entry.
		for n > 1 && maxEntries < n {
			n >>= 1
		}
	}

	reg := obs.Default()
	c := &Cache{
		shards: make([]*shard, n),
		mask:   uint64(n - 1),
		entries: reg.Gauge("schedcache_entries",
			"Schedules currently cached."),
		size: reg.Gauge("schedcache_bytes",
			"Approximate resident bytes of cached schedules."),
		evictions: reg.Counter("schedcache_evictions_total",
			"Cached schedules evicted to stay within the entry or byte budget."),
		collisions: reg.Counter("schedcache_collisions_total",
			"Lookups whose fingerprint matched a stored entry with a different canonical encoding."),
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			lru:        list.New(),
			byKey:      make(map[Key]*list.Element), //lint:coldpath cache construction runs once per process
			flights:    make(map[Key]*flight),       //lint:coldpath cache construction runs once per process
			maxEntries: (maxEntries + n - 1) / n,
			maxBytes:   (maxBytes + int64(n) - 1) / int64(n),
		}
	}
	return c
}

func (c *Cache) counters(heuristic string) *heuristicCounters {
	if hc, ok := c.perHeuristic.Load(heuristic); ok {
		return hc.(*heuristicCounters)
	}
	reg := obs.Default()
	l := obs.L("heuristic", heuristic)
	hc := &heuristicCounters{
		hits:      reg.Counter("schedcache_hits_total", "Schedule requests served from cache.", l),
		misses:    reg.Counter("schedcache_misses_total", "Schedule requests computed and cached.", l),
		coalesced: reg.Counter("schedcache_coalesced_total", "Schedule requests coalesced onto a concurrent identical computation.", l),
	}
	actual, _ := c.perHeuristic.LoadOrStore(heuristic, hc)
	return actual.(*heuristicCounters)
}

func (c *Cache) shardFor(k Key) *shard {
	// The fingerprint is a SHA-256: any 8 bytes are uniformly
	// distributed, so fold the first word with the scalar key parts.
	h := uint64(k.Fingerprint[0]) | uint64(k.Fingerprint[1])<<8 |
		uint64(k.Fingerprint[2])<<16 | uint64(k.Fingerprint[3])<<24 |
		uint64(k.Fingerprint[4])<<32 | uint64(k.Fingerprint[5])<<40 |
		uint64(k.Fingerprint[6])<<48 | uint64(k.Fingerprint[7])<<56
	h ^= uint64(len(k.Heuristic))<<32 ^ uint64(uint32(k.NProcs))
	for _, b := range []byte(k.Heuristic) {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	return c.shards[h&c.mask]
}

// sizeOf approximates the resident cost of one entry: the owned
// encoding plus the schedule's assignment array and the canonical
// clone graph the schedule points at (CSR-free, roughly the encoding
// again), plus fixed bookkeeping.
func sizeOf(enc []byte, s *sched.Schedule) int64 {
	const assignmentBytes = 40
	const fixed = 256
	return 2*int64(len(enc)) + int64(len(s.ByNode))*assignmentBytes + fixed
}

// Do returns the schedule for key, computing it with compute on a
// miss. enc must be the canonical encoding of the graph the key's
// fingerprint was derived from; it is only read during the call (an
// owned copy is stored). compute must return a schedule in canonical
// index space, deterministic for the encoding.
//
// Concurrent calls with the same key coalesce: one computes, the rest
// wait for its result (or their own context, whichever ends first).
// If the computing caller is cancelled, a waiter whose own context is
// still live takes over the computation instead of inheriting the
// cancellation.
func (c *Cache) Do(ctx context.Context, key Key, enc []byte, compute func(context.Context) (*sched.Schedule, error)) (*sched.Schedule, Status, error) {
	sc, _, st, err := c.DoMeta(ctx, key, enc, func(ctx context.Context) (*sched.Schedule, any, error) {
		s, err := compute(ctx)
		return s, nil, err
	})
	return sc, st, err
}

// DoMeta is Do for computations that produce provenance beyond the
// schedule itself — the anytime tier's proven lower bound, generation
// counts and so on. The opaque meta value is stored beside the
// schedule and returned with every hit or coalesced share, so cached
// refined schedules keep their certified gap instead of degrading to
// an uncertified answer. meta must be immutable: it is shared across
// callers exactly like the schedule.
func (c *Cache) DoMeta(ctx context.Context, key Key, enc []byte, compute func(context.Context) (*sched.Schedule, any, error)) (*sched.Schedule, any, Status, error) {
	s := c.shardFor(key)
	hc := c.counters(key.Heuristic)
	waited := false
	for {
		s.mu.Lock()
		if el, ok := s.byKey[key]; ok {
			e := el.Value.(*entry)
			if bytes.Equal(e.enc, enc) {
				s.lru.MoveToFront(el)
				s.mu.Unlock()
				if waited {
					hc.coalesced.Inc()
					return e.sched, e.meta, Coalesced, nil
				}
				hc.hits.Inc()
				return e.sched, e.meta, Hit, nil
			}
			// Fingerprint collision: a different graph owns this key.
			// Serve correctness over throughput: compute uncached.
			s.mu.Unlock()
			c.collisions.Inc()
			hc.misses.Inc()
			sc, meta, err := compute(ctx)
			return sc, meta, Miss, err
		}
		if f, ok := s.flights[key]; ok {
			s.mu.Unlock()
			select {
			case <-ctx.Done():
				return nil, nil, Miss, ctx.Err()
			case <-f.done:
			}
			waited = true
			if f.err != nil {
				// A cancelled leader must not poison waiters whose own
				// contexts are live: retry (and likely become leader).
				if isCancellation(f.err) && ctx.Err() == nil {
					continue
				}
				return nil, nil, Miss, f.err
			}
			if !bytes.Equal(f.enc, enc) {
				// Coalesced onto a colliding graph's flight.
				c.collisions.Inc()
				hc.misses.Inc()
				sc, meta, err := compute(ctx)
				return sc, meta, Miss, err
			}
			hc.coalesced.Inc()
			return f.sched, f.meta, Coalesced, nil
		}
		// Leader: compute outside the shard lock.
		f := &flight{done: make(chan struct{})} //lint:coldpath miss path; each flight needs its own done channel
		s.flights[key] = f
		s.mu.Unlock()

		sc, meta, err := compute(ctx)
		f.enc = enc
		f.sched = sc
		f.meta = meta
		f.err = err

		s.mu.Lock()
		delete(s.flights, key)
		if err == nil {
			c.store(s, key, enc, sc, meta)
		}
		s.mu.Unlock()
		close(f.done)

		if err != nil {
			return nil, nil, Miss, err
		}
		hc.misses.Inc()
		return sc, meta, Miss, nil
	}
}

// store inserts a computed schedule, evicting from the cold end until
// the shard is back under both budgets. The shard lock must be held.
func (c *Cache) store(s *shard, key Key, enc []byte, sc *sched.Schedule, meta any) {
	if el, ok := s.byKey[key]; ok {
		// A collision-path compute can race a store for the same key;
		// keep the incumbent (first writer wins, both are valid for
		// their own encodings and the incumbent matched more often).
		s.lru.MoveToFront(el)
		return
	}
	e := &entry{
		key:   key,
		enc:   append([]byte(nil), enc...),
		sched: sc,
		meta:  meta,
		bytes: sizeOf(enc, sc),
	}
	s.byKey[key] = s.lru.PushFront(e)
	s.bytes += e.bytes
	c.entries.Add(1)
	c.size.Add(e.bytes)
	for (s.lru.Len() > s.maxEntries || s.bytes > s.maxBytes) && s.lru.Len() > 1 {
		el := s.lru.Back()
		old := el.Value.(*entry)
		s.lru.Remove(el)
		delete(s.byKey, old.key)
		s.bytes -= old.bytes
		c.entries.Add(-1)
		c.size.Add(-old.bytes)
		c.evictions.Inc()
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Bytes returns the approximate resident size of all entries.
func (c *Cache) Bytes() int64 {
	var b int64
	for _, s := range c.shards {
		s.mu.Lock()
		b += s.bytes
		s.mu.Unlock()
	}
	return b
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
