package schedcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"schedcomp/internal/dag"
	"schedcomp/internal/obs"
	"schedcomp/internal/sched"
)

func testKey(b byte, heuristic string) Key {
	var fp dag.Fingerprint
	fp[0] = b
	return Key{Fingerprint: fp, Heuristic: heuristic}
}

func testSched(n int) *sched.Schedule {
	return &sched.Schedule{ByNode: make([]sched.Assignment, n), NumProcs: 1, Makespan: int64(n)}
}

func computeOnce(t *testing.T, calls *atomic.Int64, s *sched.Schedule) func(context.Context) (*sched.Schedule, error) {
	t.Helper()
	return func(context.Context) (*sched.Schedule, error) {
		calls.Add(1)
		return s, nil
	}
}

func TestHitMissBasics(t *testing.T) {
	c := New(Config{})
	key := testKey(1, "MCP")
	enc := []byte("graph-1")
	want := testSched(3)
	var calls atomic.Int64

	got, st, err := c.Do(context.Background(), key, enc, computeOnce(t, &calls, want))
	if err != nil || got != want || st != Miss {
		t.Fatalf("first Do: got %v status %v err %v", got, st, err)
	}
	got, st, err = c.Do(context.Background(), key, enc, computeOnce(t, &calls, testSched(9)))
	if err != nil || got != want || st != Hit {
		t.Fatalf("second Do: got %v status %v err %v", got, st, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if c.Bytes() <= 0 {
		t.Fatalf("Bytes = %d, want positive", c.Bytes())
	}
}

func TestComputeErrorNotCached(t *testing.T) {
	c := New(Config{})
	key := testKey(2, "MCP")
	boom := errors.New("boom")
	_, st, err := c.Do(context.Background(), key, []byte("x"), func(context.Context) (*sched.Schedule, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) || st != Miss {
		t.Fatalf("got status %v err %v", st, err)
	}
	if c.Len() != 0 {
		t.Fatalf("error result was cached: Len = %d", c.Len())
	}
	// The key is usable afterwards.
	var calls atomic.Int64
	if _, st, err := c.Do(context.Background(), key, []byte("x"), computeOnce(t, &calls, testSched(1))); err != nil || st != Miss {
		t.Fatalf("retry after error: status %v err %v", st, err)
	}
}

func TestEntryBudgetEviction(t *testing.T) {
	// One shard so LRU order is globally observable.
	c := New(Config{Shards: 1, MaxEntries: 3})
	ctx := context.Background()
	var calls atomic.Int64
	for i := 0; i < 5; i++ {
		key := testKey(byte(i), "ETF")
		if _, _, err := c.Do(ctx, key, []byte{byte(i)}, computeOnce(t, &calls, testSched(1))); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// Oldest two were evicted: re-requesting key 0 recomputes...
	before := calls.Load()
	if _, st, _ := c.Do(ctx, testKey(0, "ETF"), []byte{0}, computeOnce(t, &calls, testSched(1))); st != Miss {
		t.Fatalf("evicted key served with status %v", st)
	}
	if calls.Load() != before+1 {
		t.Fatal("evicted key did not recompute")
	}
	// ...while the newest survives.
	if _, st, _ := c.Do(ctx, testKey(4, "ETF"), []byte{4}, computeOnce(t, &calls, testSched(1))); st != Hit {
		t.Fatalf("fresh key served with status %v", st)
	}
}

func TestByteBudgetEviction(t *testing.T) {
	one := sizeOf([]byte("some-encoding"), testSched(4))
	c := New(Config{Shards: 1, MaxEntries: 1000, MaxBytes: 2 * one})
	ctx := context.Background()
	var calls atomic.Int64
	for i := 0; i < 4; i++ {
		if _, _, err := c.Do(ctx, testKey(byte(i), "HLFET"), []byte("some-encoding"), computeOnce(t, &calls, testSched(4))); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Bytes(); got > 2*one {
		t.Fatalf("Bytes = %d over budget %d", got, 2*one)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRUTouchOnHit(t *testing.T) {
	c := New(Config{Shards: 1, MaxEntries: 2})
	ctx := context.Background()
	var calls atomic.Int64
	c.Do(ctx, testKey(1, "MCP"), []byte{1}, computeOnce(t, &calls, testSched(1)))
	c.Do(ctx, testKey(2, "MCP"), []byte{2}, computeOnce(t, &calls, testSched(1)))
	// Touch 1 so 2 becomes the cold end, then insert 3.
	if _, st, _ := c.Do(ctx, testKey(1, "MCP"), []byte{1}, computeOnce(t, &calls, testSched(1))); st != Hit {
		t.Fatalf("touch missed: %v", st)
	}
	c.Do(ctx, testKey(3, "MCP"), []byte{3}, computeOnce(t, &calls, testSched(1)))
	if _, st, _ := c.Do(ctx, testKey(1, "MCP"), []byte{1}, computeOnce(t, &calls, testSched(1))); st != Hit {
		t.Fatal("recently touched entry was evicted")
	}
	if _, st, _ := c.Do(ctx, testKey(2, "MCP"), []byte{2}, computeOnce(t, &calls, testSched(1))); st != Miss {
		t.Fatal("cold entry survived past the budget")
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	c := New(Config{})
	key := testKey(7, "DLS")
	enc := []byte("shared")
	want := testSched(2)
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	leaderCompute := func(context.Context) (*sched.Schedule, error) {
		calls.Add(1)
		close(started)
		<-release
		return want, nil
	}

	var wg sync.WaitGroup
	statuses := make([]Status, 4)
	results := make([]*sched.Schedule, 4)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], statuses[0], _ = c.Do(context.Background(), key, enc, leaderCompute)
	}()
	<-started
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], statuses[i], _ = c.Do(context.Background(), key, enc, func(context.Context) (*sched.Schedule, error) {
				calls.Add(1)
				return testSched(99), nil
			})
		}(i)
	}
	// Give the followers a moment to park on the flight.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	coalesced := 0
	for i, st := range statuses {
		if results[i] != want {
			t.Fatalf("caller %d got wrong schedule (status %v)", i, st)
		}
		if st == Coalesced {
			coalesced++
		}
	}
	if statuses[0] != Miss {
		t.Fatalf("leader status %v, want Miss", statuses[0])
	}
	if coalesced != 3 {
		t.Fatalf("%d callers coalesced, want 3", coalesced)
	}
}

func TestCancelledLeaderDoesNotPoisonWaiters(t *testing.T) {
	c := New(Config{})
	key := testKey(8, "MCP")
	enc := []byte("takeover")
	want := testSched(5)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.Do(leaderCtx, key, enc, func(ctx context.Context) (*sched.Schedule, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		})
	}()
	<-started

	var followerSched *sched.Schedule
	var followerErr error
	var followerStatus Status
	wg.Add(1)
	go func() {
		defer wg.Done()
		followerSched, followerStatus, followerErr = c.Do(context.Background(), key, enc, func(context.Context) (*sched.Schedule, error) {
			return want, nil
		})
	}()
	// Let the follower park on the leader's flight, then cancel the
	// leader out from under it.
	time.Sleep(20 * time.Millisecond)
	cancelLeader()
	wg.Wait()

	if !errors.Is(leaderErr, context.Canceled) {
		t.Fatalf("leader error %v, want Canceled", leaderErr)
	}
	if followerErr != nil {
		t.Fatalf("follower inherited cancellation: %v", followerErr)
	}
	if followerSched != want {
		t.Fatal("follower did not take over the computation")
	}
	if followerStatus != Miss {
		t.Fatalf("takeover status %v, want Miss", followerStatus)
	}
	// The takeover's result is cached.
	if _, st, _ := c.Do(context.Background(), key, enc, func(context.Context) (*sched.Schedule, error) {
		t.Fatal("recompute after takeover")
		return nil, nil
	}); st != Hit {
		t.Fatalf("post-takeover status %v, want Hit", st)
	}
}

func TestWaiterOwnCancellation(t *testing.T) {
	c := New(Config{})
	key := testKey(9, "MCP")
	enc := []byte("slow")
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go c.Do(context.Background(), key, enc, func(context.Context) (*sched.Schedule, error) {
		close(started)
		<-release
		return testSched(1), nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, key, enc, func(context.Context) (*sched.Schedule, error) {
		t.Fatal("cancelled waiter computed")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want Canceled", err)
	}
}

func TestFingerprintCollisionServedUncached(t *testing.T) {
	reg := obs.Default()
	wasEnabled := reg.Enabled()
	reg.SetEnabled(true)
	defer reg.SetEnabled(wasEnabled)

	c := New(Config{})
	key := testKey(10, "MCP") // same key for two different "graphs"
	encA, encB := []byte("graph-A"), []byte("graph-B")
	schedA, schedB := testSched(1), testSched(2)
	ctx := context.Background()

	if _, st, _ := c.Do(ctx, key, encA, func(context.Context) (*sched.Schedule, error) { return schedA, nil }); st != Miss {
		t.Fatalf("seed status %v", st)
	}
	var calls atomic.Int64
	got, st, err := c.Do(ctx, key, encB, computeOnce(t, &calls, schedB))
	if err != nil || st != Miss || got != schedB {
		t.Fatalf("collision lookup: got %v status %v err %v", got, st, err)
	}
	if calls.Load() != 1 {
		t.Fatal("collision victim was not computed")
	}
	if c.collisions.Value() == 0 {
		t.Fatal("collision not counted")
	}
	// The incumbent still hits.
	if _, st, _ := c.Do(ctx, key, encA, func(context.Context) (*sched.Schedule, error) {
		t.Fatal("incumbent recomputed")
		return nil, nil
	}); st != Hit {
		t.Fatalf("incumbent status %v", st)
	}
}

func TestStoredEncodingIsOwnedCopy(t *testing.T) {
	c := New(Config{})
	key := testKey(11, "MCP")
	enc := []byte("mutate-me")
	c.Do(context.Background(), key, enc, func(context.Context) (*sched.Schedule, error) { return testSched(1), nil })
	enc[0] = 'X' // caller scribbles on its buffer after Do returns
	if _, st, _ := c.Do(context.Background(), key, []byte("mutate-me"), func(context.Context) (*sched.Schedule, error) {
		t.Fatal("recomputed: stored encoding was aliased to the caller's buffer")
		return nil, nil
	}); st != Hit {
		t.Fatalf("status %v, want Hit", st)
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	c := New(Config{Shards: 4, MaxEntries: 64})
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := byte(i % 32)
				key := testKey(k, "MCP")
				enc := []byte(fmt.Sprintf("enc-%d", k))
				s, _, err := c.Do(ctx, key, enc, func(context.Context) (*sched.Schedule, error) {
					return testSched(int(k) + 1), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if len(s.ByNode) != int(k)+1 {
					t.Errorf("key %d got schedule of %d nodes", k, len(s.ByNode))
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{Hit: "hit", Miss: "miss", Coalesced: "coalesced"} {
		if st.String() != want {
			t.Fatalf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}

// DoMeta must round-trip the compute's opaque metadata through every
// status: returned on the miss, preserved byte-for-byte on hits, and
// shared with coalesced waiters.
func TestDoMetaRoundTrip(t *testing.T) {
	type prov struct {
		LowerBound int64
		Proven     bool
	}
	c := New(Config{})
	key := testKey(7, "quality:best")
	enc := []byte("graph-meta")
	want := testSched(4)
	wantMeta := prov{LowerBound: 42, Proven: true}

	sc, meta, st, err := c.DoMeta(context.Background(), key, enc, func(context.Context) (*sched.Schedule, any, error) {
		return want, wantMeta, nil
	})
	if err != nil || sc != want || st != Miss {
		t.Fatalf("miss: sched %v status %v err %v", sc, st, err)
	}
	if got, ok := meta.(prov); !ok || got != wantMeta {
		t.Fatalf("miss meta = %#v, want %#v", meta, wantMeta)
	}

	sc, meta, st, err = c.DoMeta(context.Background(), key, enc, func(context.Context) (*sched.Schedule, any, error) {
		t.Fatal("compute ran on a hit")
		return nil, nil, nil
	})
	if err != nil || sc != want || st != Hit {
		t.Fatalf("hit: sched %v status %v err %v", sc, st, err)
	}
	if got, ok := meta.(prov); !ok || got != wantMeta {
		t.Fatalf("hit meta = %#v, want %#v", meta, wantMeta)
	}

	// Coalesced waiters receive the leader's meta.
	key2 := testKey(8, "quality:best")
	block := make(chan struct{})
	entered := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, m, st, err := c.DoMeta(context.Background(), key2, enc, func(context.Context) (*sched.Schedule, any, error) {
			close(entered)
			<-block
			return want, wantMeta, nil
		})
		if err != nil || st != Miss {
			t.Errorf("leader: status %v err %v", st, err)
		}
		if got, ok := m.(prov); !ok || got != wantMeta {
			t.Errorf("leader meta = %#v", m)
		}
	}()
	<-entered
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, m, st, err := c.DoMeta(context.Background(), key2, enc, func(context.Context) (*sched.Schedule, any, error) {
			t.Error("waiter computed")
			return nil, nil, nil
		})
		if err != nil || st != Coalesced {
			t.Errorf("waiter: status %v err %v", st, err)
		}
		if got, ok := m.(prov); !ok || got != wantMeta {
			t.Errorf("waiter meta = %#v", m)
		}
	}()
	// Let the waiter park on the flight before releasing the leader.
	time.Sleep(10 * time.Millisecond)
	close(block)
	wg.Wait()
	<-done

	// Plain Do on a DoMeta-stored entry still works (meta dropped).
	sc, st, err = c.Do(context.Background(), key, enc, computeOnce(t, new(atomic.Int64), testSched(9)))
	if err != nil || sc != want || st != Hit {
		t.Fatalf("Do after DoMeta: sched %v status %v err %v", sc, st, err)
	}
}
