package serve

import (
	"context"
	"fmt"
	"time"

	"schedcomp/internal/anytime"
	"schedcomp/internal/dag"
	"schedcomp/internal/sched"
	"schedcomp/internal/schedcache"
)

// QualityBest is the cache-key "heuristic" dimension used for the
// anytime quality tier. It cannot collide with a registered heuristic
// name: registry names never contain ':'.
const QualityBest = "quality:best"

// qualityMeta is the provenance stored beside a cached quality-tier
// schedule, so a hit keeps its certified gap instead of degrading to
// an uncertified answer. Immutable once stored (shared across
// callers, like the schedule itself).
type qualityMeta struct {
	lowerBound   int64
	proven       bool
	generations  int
	improvements int
	probeStates  int64
	seedName     string
	elapsed      time.Duration
}

// ScheduleBest runs the anytime quality tier on g: a GA over the full
// heuristic portfolio interleaved with a branch-and-bound probe, under
// the given refinement budget (DefaultBudget when <= 0). Admission
// follows the single-request discipline — non-blocking, a full queue
// sheds with ErrQueueFull — and the request context bounds the whole
// call, so a context deadline shorter than the budget wins.
//
// With a cache configured, results are keyed by canonical graph
// content under the QualityBest dimension (budget is deliberately not
// part of the key: a refined schedule with a proven gap is valid for
// any budget, and reusing it is the point of caching). Hits rebuild
// the full Result — bound, gap, provenance — from the stored metadata;
// Elapsed then reports the original computation's refinement time.
func (p *Pipeline) ScheduleBest(ctx context.Context, g *dag.Graph, budget time.Duration) (*anytime.Result, CacheStatus, error) {
	if budget <= 0 {
		budget = anytime.DefaultBudget
	}
	if p.cache == nil {
		res, err := p.runBest(ctx, g, budget)
		return res, CacheNone, err
	}
	key := schedcache.Key{
		Fingerprint: g.CanonicalHash(),
		Heuristic:   QualityBest,
	}
	enc := g.CanonicalEncoding()
	canonical, meta, st, err := p.cache.DoMeta(ctx, key, enc, func(ctx context.Context) (*sched.Schedule, any, error) {
		res, err := p.runBest(ctx, g.CanonicalClone(), budget)
		if err != nil {
			return nil, nil, err
		}
		return res.Schedule, qualityMeta{
			lowerBound:   res.LowerBound,
			proven:       res.Proven,
			generations:  res.Generations,
			improvements: res.Improvements,
			probeStates:  res.ProbeStates,
			seedName:     res.SeedName,
			elapsed:      res.Elapsed,
		}, nil
	})
	if err != nil {
		return nil, CacheMiss, err
	}
	qm, ok := meta.(qualityMeta)
	if !ok {
		// Unreachable unless another writer stored a foreign meta under
		// the QualityBest dimension; fail loudly rather than fabricate
		// an unproven bound.
		return nil, CacheMiss, fmt.Errorf("serve: quality cache entry has unexpected metadata %T", meta)
	}
	status := CacheMiss
	if st == schedcache.Hit || st == schedcache.Coalesced {
		status = CacheHit
	}
	sc := remapSchedule(canonical, g)
	return &anytime.Result{
		Schedule:     sc,
		LowerBound:   qm.lowerBound,
		Gap:          sc.Makespan - qm.lowerBound,
		Proven:       qm.proven,
		Generations:  qm.generations,
		Improvements: qm.improvements,
		SeedName:     qm.seedName,
		ProbeStates:  qm.probeStates,
		Elapsed:      qm.elapsed,
	}, status, nil
}

// runBest pushes one quality-tier request through the worker pool with
// the non-blocking (shedding) admission discipline and waits for its
// result.
func (p *Pipeline) runBest(ctx context.Context, g *dag.Graph, budget time.Duration) (*anytime.Result, error) {
	p.submitted.Inc()
	done := make(chan Result, 1)
	t := task{ctx: ctx, g: g, quality: true, budget: budget, enq: time.Now(), done: done}

	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, ErrClosed
	}
	select {
	case p.queue <- t:
		p.mu.RUnlock()
		p.admitted.Inc()
		p.depth.Add(1)
	default:
		p.mu.RUnlock()
		p.shed.Inc()
		return nil, ErrQueueFull
	}

	select {
	case r := <-done:
		return r.Best, r.Err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
