package serve_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"schedcomp/internal/anytime"
	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/schedtest"
	"schedcomp/internal/obs"
	"schedcomp/internal/schedcache"
	"schedcomp/internal/serve"
)

// checkBestResult asserts the quality-tier invariants every returned
// result must satisfy, regardless of cache status: a valid schedule on
// the requesting graph, the gap identity, and Proven ⇔ Gap == 0.
func checkBestResult(t *testing.T, res *anytime.Result) {
	t.Helper()
	if res == nil || res.Schedule == nil {
		t.Fatal("quality result missing schedule")
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("quality schedule invalid: %v", err)
	}
	if res.Gap != res.Schedule.Makespan-res.LowerBound {
		t.Fatalf("gap %d != makespan %d - lower bound %d",
			res.Gap, res.Schedule.Makespan, res.LowerBound)
	}
	if res.Gap < 0 {
		t.Fatalf("negative gap %d (bound above the schedule)", res.Gap)
	}
	if res.Proven != (res.Gap == 0) {
		t.Fatalf("Proven = %v with gap %d", res.Proven, res.Gap)
	}
}

func TestScheduleBestUncached(t *testing.T) {
	p, _ := newTestPipeline(t, serve.Config{Workers: 2, QueueDepth: 4})
	g := schedtest.RandomDAG(rand.New(rand.NewSource(21)), 15, 0.2)

	res, st, err := p.ScheduleBest(context.Background(), g, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st != serve.CacheNone {
		t.Fatalf("status %q, want CacheNone without a cache", st)
	}
	checkBestResult(t, res)
	if res.Schedule.Graph != g {
		t.Fatal("schedule does not point at the requesting graph")
	}
	if res.SeedName == "" {
		t.Fatal("result lost its seeding heuristic name")
	}
}

// The anytime result must never be worse than the best portfolio
// member — the floor is structural (seeds survive in the population),
// so this holds at any budget.
func TestScheduleBestPortfolioFloor(t *testing.T) {
	p, _ := newTestPipeline(t, serve.Config{Workers: 2, QueueDepth: 4})
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 3; trial++ {
		g := schedtest.RandomDAG(rng, 10+rng.Intn(20), 0.2)
		floor := int64(-1)
		for _, name := range heuristics.Names() {
			s, err := heuristics.New(name)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := heuristics.Run(s, g)
			if err != nil {
				t.Fatal(err)
			}
			if floor < 0 || sc.Makespan < floor {
				floor = sc.Makespan
			}
		}
		res, _, err := p.ScheduleBest(context.Background(), g, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		checkBestResult(t, res)
		if res.Schedule.Makespan > floor {
			t.Fatalf("trial %d: quality makespan %d worse than portfolio floor %d",
				trial, res.Schedule.Makespan, floor)
		}
	}
}

// A cache hit must reproduce the refined schedule byte-for-byte AND
// keep the certified provenance (bound, proof, generation counts) —
// degrading a proven-optimal cached answer to an uncertified one would
// silently break the gap contract.
func TestScheduleBestCachedProvenanceSurvivesHit(t *testing.T) {
	p := newCachedPipeline(t, serve.Config{Workers: 2, QueueDepth: 4})
	rng := rand.New(rand.NewSource(23))
	g := schedtest.RandomDAG(rng, 18, 0.2)

	first, st, err := p.ScheduleBest(context.Background(), g, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st != serve.CacheMiss {
		t.Fatalf("first status %q, want miss", st)
	}
	checkBestResult(t, first)

	second, st, err := p.ScheduleBest(context.Background(), g, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st != serve.CacheHit {
		t.Fatalf("second status %q, want hit", st)
	}
	checkBestResult(t, second)
	if !bytes.Equal(scheduleJSON(t, first.Schedule), scheduleJSON(t, second.Schedule)) {
		t.Fatal("hit schedule not byte-identical to the miss")
	}
	if second.LowerBound != first.LowerBound || second.Proven != first.Proven ||
		second.Generations != first.Generations || second.Improvements != first.Improvements ||
		second.ProbeStates != first.ProbeStates || second.SeedName != first.SeedName {
		t.Fatalf("provenance lost on hit:\nmiss %+v\nhit  %+v", first, second)
	}

	// An isomorphic relabeling hits too, with the schedule remapped into
	// the twin's numbering and the certified bound intact.
	twin := permutedCopy(rng, g)
	remapped, st, err := p.ScheduleBest(context.Background(), twin, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st != serve.CacheHit {
		t.Fatalf("twin status %q, want hit", st)
	}
	checkBestResult(t, remapped)
	if remapped.Schedule.Graph != twin {
		t.Fatal("remapped schedule does not point at the twin")
	}
	if remapped.Schedule.Makespan != first.Schedule.Makespan ||
		remapped.LowerBound != first.LowerBound || remapped.Proven != first.Proven {
		t.Fatalf("twin hit disagrees: makespan %d/%d bound %d/%d proven %v/%v",
			remapped.Schedule.Makespan, first.Schedule.Makespan,
			remapped.LowerBound, first.LowerBound, remapped.Proven, first.Proven)
	}
}

// The quality tier and the plain tier must not share cache entries:
// same graph, different key dimensions.
func TestScheduleBestDoesNotCollideWithPlainCache(t *testing.T) {
	p := newCachedPipeline(t, serve.Config{Workers: 2, QueueDepth: 4})
	g := schedtest.RandomDAG(rand.New(rand.NewSource(24)), 16, 0.2)

	for _, name := range heuristics.Names() {
		s, err := heuristics.New(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, st, err := p.ScheduleCached(context.Background(), s, g); err != nil || st != serve.CacheMiss {
			t.Fatalf("%s warm-up: status %q err %v", name, st, err)
		}
	}
	// Every plain entry is warm; the quality tier must still be a miss.
	res, st, err := p.ScheduleBest(context.Background(), g, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st != serve.CacheMiss {
		t.Fatalf("quality request status %q after plain warm-up, want miss", st)
	}
	checkBestResult(t, res)
}

func TestScheduleBestAfterClose(t *testing.T) {
	reg := obs.NewRegistry()
	p := serve.New(serve.Config{Workers: 1, QueueDepth: 1}, reg)
	p.Close()
	if _, _, err := p.ScheduleBest(context.Background(), tinyGraph(), time.Millisecond); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestScheduleBestPreCancelled(t *testing.T) {
	p, _ := newTestPipeline(t, serve.Config{Workers: 1, QueueDepth: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err := p.ScheduleBest(ctx, tinyGraph(), time.Millisecond)
	if !heuristics.IsCancellation(err) {
		t.Fatalf("err = %v, want a cancellation", err)
	}
	if res != nil {
		t.Fatalf("stale result %+v from pre-cancelled context", res)
	}
}

// TestSoakAnytime hammers a cached pipeline with a mix of quality-tier
// and plain requests under the race detector: random client
// cancellations, repeated graph content (cache hits and coalesced
// quality flights), and concurrent plain traffic. Afterwards the
// counter ledger must reconcile exactly and no goroutine may survive.
func TestSoakAnytime(t *testing.T) {
	baseline := runtime.NumGoroutine()

	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	p := serve.New(serve.Config{Workers: 4, QueueDepth: 8, Cache: schedcache.New(schedcache.Config{})}, reg)

	soakNames := heuristics.Names()
	deadline := time.Now().Add(soakDuration(t))
	var qualityOK, plainOK, sheds, cancellations atomic.Uint64

	// A small pool of shared graphs makes cache hits and coalesced
	// quality flights common; fresh graphs keep misses in the mix.
	sharedRng := rand.New(rand.NewSource(99))
	pool := make([]*dag.Graph, 6)
	for i := range pool {
		pool[i] = schedtest.RandomDAG(sharedRng, 8+sharedRng.Intn(24), 0.2)
	}

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				g := pool[rng.Intn(len(pool))]
				if rng.Intn(4) == 0 {
					g = schedtest.RandomDAG(rng, 8+rng.Intn(24), 0.2)
				}

				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if rng.Intn(5) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(3))*time.Millisecond)
				}

				if rng.Intn(2) == 0 {
					budget := time.Duration(1+rng.Intn(5)) * time.Millisecond
					res, _, err := p.ScheduleBest(ctx, g, budget)
					switch {
					case err == nil:
						checkBestResult(t, res)
						qualityOK.Add(1)
					case errors.Is(err, serve.ErrQueueFull):
						sheds.Add(1)
					case heuristics.IsCancellation(err):
						cancellations.Add(1)
					default:
						t.Errorf("quality request: %v", err)
					}
				} else {
					name := soakNames[rng.Intn(len(soakNames))]
					s, err := heuristics.New(name)
					if err != nil {
						t.Error(err)
						cancel()
						return
					}
					sc, _, err := p.ScheduleCached(ctx, s, g)
					switch {
					case err == nil:
						plainOK.Add(1)
						if verr := sc.Validate(); verr != nil {
							t.Errorf("invalid plain schedule under load: %v", verr)
						}
					case errors.Is(err, serve.ErrQueueFull):
						sheds.Add(1)
					case heuristics.IsCancellation(err):
						cancellations.Add(1)
					default:
						t.Errorf("plain request: %v", err)
					}
				}
				cancel()
			}
		}(int64(c) + 101)
	}
	wg.Wait()
	p.Close()

	if qualityOK.Load() == 0 {
		t.Error("soak produced no successful quality results")
	}
	if plainOK.Load() == 0 {
		t.Error("soak produced no successful plain schedules")
	}
	t.Logf("anytime soak: %d quality, %d plain, %d sheds, %d cancellations",
		qualityOK.Load(), plainOK.Load(), sheds.Load(), cancellations.Load())

	submitted := reg.Counter("serve_submitted_total", "").Value()
	admitted := reg.Counter("serve_admitted_total", "").Value()
	shed := reg.Counter("serve_shed_total", "").Value()
	completed := reg.Counter("serve_completed_total", "").Value()
	failed := reg.Counter("serve_failed_total", "").Value()
	cancelled := reg.Counter("serve_cancelled_total", "").Value()
	if submitted != admitted+shed {
		t.Errorf("submitted (%d) != admitted (%d) + shed (%d)", submitted, admitted, shed)
	}
	if admitted != completed+failed+cancelled {
		t.Errorf("admitted (%d) != completed (%d) + failed (%d) + cancelled (%d)",
			admitted, completed, failed, cancelled)
	}
	if failed != 0 {
		t.Errorf("failed = %d on well-formed graphs, want 0", failed)
	}
	if depth := reg.Gauge("serve_queue_depth", "").Value(); depth != 0 {
		t.Errorf("queue depth after drain = %d, want 0", depth)
	}

	settle := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(settle) {
			t.Fatalf("goroutines: %d at start, %d after Close — leak", baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
