package serve

import (
	"context"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
)

// ScheduleBatch runs every graph in graphs through the pipeline and
// calls emit exactly once per item, in input order, as results become
// available. factory must return a fresh scheduler per item: items
// run concurrently across the pool, so a shared instance could race.
//
// Items are admitted with the blocking path, so a batch larger than
// the queue feeds the pool at the pool's pace instead of flooding it.
// Submission runs concurrently with emission: early items stream out
// while later ones are still queued. With a cache configured, items
// are resolved through it concurrently (hits bypass the queue) and
// each Result carries its CacheStatus.
//
// If ctx ends mid-batch, items not yet admitted are reported with
// ctx's error and items in flight are cancelled by the workers; emit
// still runs once per item, in order, so the stream stays aligned
// with the input. A cancelled item carries the context error and a
// nil Schedule — a partial placement never reaches the stream. If
// emit returns an error, emission stops, in-flight items drain, and
// ScheduleBatch returns that error.
func (p *Pipeline) ScheduleBatch(ctx context.Context, factory func() heuristics.Scheduler, graphs []*dag.Graph, emit func(Result) error) error {
	n := len(graphs)
	if n == 0 {
		return nil
	}
	// Capacity n: every item delivers exactly one Result here, either
	// from a worker or from a failed submit, so nothing ever blocks.
	done := make(chan Result, n)
	if p.cache != nil {
		// Cached path: items resolve through the cache concurrently so
		// a hit on item k streams out without waiting behind item k-1's
		// computation. The goroutine fan-out is bounded separately from
		// the queue because hits never enter the queue at all; misses
		// still use blocking admission, preserving the backpressure
		// contract. factory runs sequentially in submission order — its
		// implementations may mutate shared state.
		go func() {
			sem := make(chan struct{}, p.cfg.Workers+p.cfg.QueueDepth)
			for i, g := range graphs {
				s := factory()
				sem <- struct{}{}
				go func(i int, s heuristics.Scheduler, g *dag.Graph) {
					defer func() { <-sem }()
					sc, st, err := p.scheduleCached(ctx, s, g, true)
					done <- Result{Index: i, Schedule: sc, Cache: st, Err: err}
				}(i, s, g)
			}
		}()
	} else {
		go func() {
			for i, g := range graphs {
				if err := p.submit(ctx, factory(), g, i, done); err != nil {
					done <- Result{Index: i, Err: err}
				}
			}
		}()
	}

	pending := make([]*Result, n)
	next := 0
	var emitErr error
	for received := 0; received < n; received++ {
		r := <-done
		if emitErr != nil {
			continue // drain without emitting
		}
		pending[r.Index] = &r
		for next < n && pending[next] != nil {
			out := *pending[next]
			pending[next] = nil
			if err := emit(out); err != nil {
				emitErr = err
				break
			}
			next++
		}
	}
	return emitErr
}
