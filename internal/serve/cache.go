package serve

import (
	"context"
	"time"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/sched"
	"schedcomp/internal/schedcache"
)

// Cached scheduling. With a cache configured, every request is first
// resolved to its canonical content key; a hit returns immediately —
// no admission, no queue, no shedding — and a miss schedules the
// CANONICAL CLONE of the graph through the normal pipeline path, then
// stores the canonical-space schedule.
//
// Scheduling the clone rather than the submitted graph is what makes
// the cache's consistency contract hold across relabelings: a
// heuristic's tie-breaks depend on node numbering, so two isomorphic
// graphs scheduled directly could legitimately get different (equally
// valid) schedules. The canonical clone is the same byte-for-byte
// graph for every member of the isomorphism class, so the computed
// schedule is too, and each requester only differs in the final
// remapping through its own canonical permutation.

// ScheduleCached is Schedule with cache semantics: the returned status
// reports whether the schedule came from the cache (CacheNone when the
// pipeline has no cache; then it behaves exactly like Schedule).
func (p *Pipeline) ScheduleCached(ctx context.Context, s heuristics.Scheduler, g *dag.Graph) (*sched.Schedule, CacheStatus, error) {
	if p.cache == nil {
		sc, err := p.Schedule(ctx, s, g)
		return sc, CacheNone, err
	}
	return p.scheduleCached(ctx, s, g, false)
}

// scheduleCached resolves one request through the cache; blocking
// selects the batch (blocking) or single (shedding) admission path for
// the miss computation.
func (p *Pipeline) scheduleCached(ctx context.Context, s heuristics.Scheduler, g *dag.Graph, blocking bool) (*sched.Schedule, CacheStatus, error) {
	key := schedcache.Key{
		Fingerprint: g.CanonicalHash(),
		Heuristic:   s.Name(),
		// NProcs 0: the serving layer always lets the heuristic choose
		// the processor count today; the key dimension is reserved.
	}
	enc := g.CanonicalEncoding()
	canonical, st, err := p.cache.Do(ctx, key, enc, func(ctx context.Context) (*sched.Schedule, error) {
		return p.run(ctx, s, g.CanonicalClone(), blocking)
	})
	if err != nil {
		return nil, CacheMiss, err
	}
	status := CacheMiss
	if st == schedcache.Hit || st == schedcache.Coalesced {
		status = CacheHit
	}
	return remapSchedule(canonical, g), status, nil
}

// run pushes one graph through the worker pool using the requested
// admission discipline and waits for its result.
func (p *Pipeline) run(ctx context.Context, s heuristics.Scheduler, g *dag.Graph, blocking bool) (*sched.Schedule, error) {
	if !blocking {
		return p.Schedule(ctx, s, g)
	}
	done := make(chan Result, 1)
	p.submitted.Inc()
	t := task{ctx: ctx, s: s, g: g, enq: time.Now(), done: done}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		p.shed.Inc()
		return nil, ErrClosed
	}
	select { //lint:lockheld same blocking-admission contract as submit
	case p.queue <- t:
		p.admitted.Inc()
		p.depth.Add(1)
		p.mu.RUnlock()
	case <-ctx.Done():
		p.shed.Inc()
		p.mu.RUnlock()
		return nil, ctx.Err()
	}
	select {
	case r := <-done:
		return r.Schedule, r.Err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// remapSchedule translates a canonical-space schedule back into the
// requesting graph's node numbering. Placement, timing and processor
// count are preserved exactly — node v of g executes where and when
// its canonical image perm[v] does — so the remapped schedule
// validates against g whenever the canonical one validates against
// the clone.
func remapSchedule(canonical *sched.Schedule, g *dag.Graph) *sched.Schedule {
	perm := g.CanonicalPerm()
	byNode := make([]sched.Assignment, len(canonical.ByNode))
	for v := range byNode {
		a := canonical.ByNode[perm[v]]
		byNode[v] = sched.Assignment{
			Node:   dag.NodeID(v),
			Proc:   a.Proc,
			Start:  a.Start,
			Finish: a.Finish,
		}
	}
	return &sched.Schedule{
		Graph:    g,
		ByNode:   byNode,
		NumProcs: canonical.NumProcs,
		Makespan: canonical.Makespan,
	}
}
