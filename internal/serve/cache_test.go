package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/mcp"
	"schedcomp/internal/heuristics/schedtest"
	"schedcomp/internal/obs"
	"schedcomp/internal/sched"
	"schedcomp/internal/schedcache"
	"schedcomp/internal/serve"
)

// newDisabledRegistry returns a registry that drops all observations,
// the state a production server boots in before -metrics handling (or
// a misconfiguration) enables it.
func newDisabledRegistry() *obs.Registry { return obs.NewRegistry() }

// waitForQueueFull probes until direct admission sheds. An admitted
// probe waits out a short deadline (its queued task then keeps the
// slot occupied until the workers unblock), so the probe loop always
// converges on ErrQueueFull while the workers stay parked.
func waitForQueueFull(t *testing.T, p *serve.Pipeline) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		_, err := p.Schedule(ctx, mcp.New(), tinyGraph())
		cancel()
		if errors.Is(err, serve.ErrQueueFull) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
}

func newCachedPipeline(t *testing.T, cfg serve.Config) *serve.Pipeline {
	t.Helper()
	if cfg.Cache == nil {
		cfg.Cache = schedcache.New(schedcache.Config{})
	}
	p, _ := newTestPipeline(t, cfg)
	return p
}

// permutedCopy relabels g's nodes with a random permutation — the same
// graph content under different numbering and a different name.
func permutedCopy(rng *rand.Rand, g *dag.Graph) *dag.Graph {
	n := g.NumNodes()
	perm := rng.Perm(n)
	weights := make([]int64, n)
	for v := 0; v < n; v++ {
		weights[perm[v]] = g.Weight(dag.NodeID(v))
	}
	h := dag.New("permuted-twin")
	for _, w := range weights {
		h.AddNode(w)
	}
	for _, e := range g.Edges() {
		h.MustAddEdge(dag.NodeID(perm[e.From]), dag.NodeID(perm[e.To]), e.Weight)
	}
	return h
}

// scheduleJSON renders the schedule parts a client sees (assignments,
// processor count, makespan) for byte comparison.
func scheduleJSON(t *testing.T, s *sched.Schedule) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		ByNode   []sched.Assignment
		NumProcs int
		Makespan int64
	}{s.ByNode, s.NumProcs, s.Makespan})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestScheduleCachedHitIsByteIdentical(t *testing.T) {
	p := newCachedPipeline(t, serve.Config{Workers: 2, QueueDepth: 4})
	g := schedtest.RandomDAG(rand.New(rand.NewSource(7)), 24, 0.2)

	first, st, err := p.ScheduleCached(context.Background(), mcp.New(), g)
	if err != nil {
		t.Fatal(err)
	}
	if st != serve.CacheMiss {
		t.Fatalf("first request status %q, want miss", st)
	}
	if err := first.Validate(); err != nil {
		t.Fatalf("miss schedule invalid: %v", err)
	}

	second, st, err := p.ScheduleCached(context.Background(), mcp.New(), g)
	if err != nil {
		t.Fatal(err)
	}
	if st != serve.CacheHit {
		t.Fatalf("second request status %q, want hit", st)
	}
	if !bytes.Equal(scheduleJSON(t, first), scheduleJSON(t, second)) {
		t.Fatal("hit is not byte-identical to the miss")
	}
}

func TestScheduleCachedHitsAcrossRelabeling(t *testing.T) {
	p := newCachedPipeline(t, serve.Config{Workers: 2, QueueDepth: 4})
	rng := rand.New(rand.NewSource(8))
	g := schedtest.RandomDAG(rng, 20, 0.25)

	base, st, err := p.ScheduleCached(context.Background(), mcp.New(), g)
	if err != nil || st != serve.CacheMiss {
		t.Fatalf("seed: status %q err %v", st, err)
	}
	for i := 0; i < 3; i++ {
		twin := permutedCopy(rng, g)
		got, st, err := p.ScheduleCached(context.Background(), mcp.New(), twin)
		if err != nil {
			t.Fatal(err)
		}
		if st != serve.CacheHit {
			t.Fatalf("relabeled twin %d status %q, want hit", i, st)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("remapped schedule invalid for twin %d: %v", i, err)
		}
		if got.Makespan != base.Makespan || got.NumProcs != base.NumProcs {
			t.Fatalf("twin %d got makespan %d/%d procs, base %d/%d",
				i, got.Makespan, got.NumProcs, base.Makespan, base.NumProcs)
		}
		if got.Graph != twin {
			t.Fatal("remapped schedule does not point at the requesting graph")
		}
	}
}

func TestScheduleCachedMissIsConsistentAcrossLabelings(t *testing.T) {
	// Two pipelines with separate caches, fed the same graph under
	// different labelings: both MISS, and the canonical-clone contract
	// must make the schedules agree (same makespan and processor
	// count, assignments equal through the relabeling).
	rng := rand.New(rand.NewSource(9))
	g := schedtest.RandomDAG(rng, 24, 0.2)
	twin := permutedCopy(rng, g)

	p1 := newCachedPipeline(t, serve.Config{Workers: 1, QueueDepth: 2})
	p2 := newCachedPipeline(t, serve.Config{Workers: 1, QueueDepth: 2})
	s1, st1, err1 := p1.ScheduleCached(context.Background(), mcp.New(), g)
	s2, st2, err2 := p2.ScheduleCached(context.Background(), mcp.New(), twin)
	if err1 != nil || err2 != nil || st1 != serve.CacheMiss || st2 != serve.CacheMiss {
		t.Fatalf("setup: %v %v %q %q", err1, err2, st1, st2)
	}
	if s1.Makespan != s2.Makespan || s1.NumProcs != s2.NumProcs {
		t.Fatalf("isomorphic misses disagree: %d/%d vs %d/%d",
			s1.Makespan, s1.NumProcs, s2.Makespan, s2.NumProcs)
	}
}

func TestScheduleCachedHitBypassesFullQueue(t *testing.T) {
	// Jam the single worker and fill the queue, then ask for a graph
	// that is already cached: the hit must come back immediately even
	// though admission would shed it.
	cache := schedcache.New(schedcache.Config{})
	p := newCachedPipeline(t, serve.Config{Workers: 1, QueueDepth: 1, Cache: cache})
	g := schedtest.RandomDAG(rand.New(rand.NewSource(10)), 16, 0.2)

	if _, st, err := p.ScheduleCached(context.Background(), mcp.New(), g); err != nil || st != serve.CacheMiss {
		t.Fatalf("warm-up: status %q err %v", st, err)
	}

	bs := &blockSched{started: make(chan struct{}, 1), release: make(chan struct{})}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p.Schedule(context.Background(), bs, tinyGraph()) }()
	<-bs.started // worker is parked
	go func() { defer wg.Done(); p.Schedule(context.Background(), &blockSched{release: bs.release}, tinyGraph()) }()
	defer func() { close(bs.release); wg.Wait() }()

	// Queue is now full: a direct Schedule sheds. A probe that races
	// ahead of the second submission gets admitted instead and then
	// occupies the slot itself, so give it a short deadline and keep
	// probing — either way the queue ends up full.
	waitForQueueFull(t, p)

	// ...but the cached graph still answers, fast and as a hit.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	sc, st, err := p.ScheduleCached(ctx, mcp.New(), g)
	if err != nil {
		t.Fatalf("hit path error under full queue: %v", err)
	}
	if st != serve.CacheHit {
		t.Fatalf("status %q, want hit", st)
	}
	if sc == nil || sc.Makespan <= 0 {
		t.Fatal("hit returned no schedule")
	}
}

func TestScheduleBatchCachedStatuses(t *testing.T) {
	p := newCachedPipeline(t, serve.Config{Workers: 2, QueueDepth: 4})
	rng := rand.New(rand.NewSource(11))
	a := schedtest.RandomDAG(rng, 14, 0.2)
	b := schedtest.RandomDAG(rng, 18, 0.25)
	graphs := []*dag.Graph{a, b, permutedCopy(rng, a), a, permutedCopy(rng, b)}

	var mu sync.Mutex
	results := make([]serve.Result, 0, len(graphs))
	err := p.ScheduleBatch(context.Background(),
		func() heuristics.Scheduler { return mcp.New() },
		graphs,
		func(r serve.Result) error {
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(graphs) {
		t.Fatalf("%d results for %d graphs", len(results), len(graphs))
	}
	hits := 0
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d", i, r.Index)
		}
		if r.Err != nil {
			t.Fatalf("item %d failed: %v", i, r.Err)
		}
		if err := r.Schedule.Validate(); err != nil {
			t.Fatalf("item %d schedule invalid: %v", i, err)
		}
		switch r.Cache {
		case serve.CacheHit:
			hits++
		case serve.CacheMiss:
		default:
			t.Fatalf("item %d has status %q", i, r.Cache)
		}
	}
	// a and b each computed once; the twins and the repeat hit (or
	// coalesced, which also reports as a hit).
	if hits != 3 {
		t.Fatalf("%d hits, want 3", hits)
	}
}

func TestScheduleCachedWithoutCacheIsTransparent(t *testing.T) {
	p, _ := newTestPipeline(t, serve.Config{Workers: 1, QueueDepth: 2})
	sc, st, err := p.ScheduleCached(context.Background(), mcp.New(), tinyGraph())
	if err != nil {
		t.Fatal(err)
	}
	if st != serve.CacheNone {
		t.Fatalf("status %q, want empty", st)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Satellite regression: a freshly booted, instantly-full pipeline must
// answer with a sane positive Retry-After even though zero requests
// have completed — and even when the obs registry is disabled, which
// used to leave the histogram-based estimator blind forever.
func TestRetryAfterColdStartOnFullPipeline(t *testing.T) {
	reg := newDisabledRegistry()
	p := serve.New(serve.Config{Workers: 1, QueueDepth: 1}, reg)
	t.Cleanup(p.Close)

	bs := &blockSched{started: make(chan struct{}, 1), release: make(chan struct{})}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p.Schedule(context.Background(), bs, tinyGraph()) }()
	<-bs.started
	go func() { defer wg.Done(); p.Schedule(context.Background(), &blockSched{release: bs.release}, tinyGraph()) }()
	defer func() { close(bs.release); wg.Wait() }()

	// Wait until the queue is actually full (the second submission —
	// or a probe — occupies the only slot).
	waitForQueueFull(t, p)
	ra := p.RetryAfter()
	if ra < time.Second || ra > 30*time.Second {
		t.Fatalf("cold-start RetryAfter = %v, want within [1s, 30s]", ra)
	}
}

// Satellite regression: the estimate must keep working when the obs
// registry is disabled (histograms drop observations then; the
// pipeline's own ledger must not).
func TestRetryAfterSurvivesDisabledRegistry(t *testing.T) {
	reg := newDisabledRegistry()
	p := serve.New(serve.Config{Workers: 1, QueueDepth: 64}, reg)
	t.Cleanup(p.Close)
	for i := 0; i < 3; i++ {
		if _, err := p.Schedule(context.Background(), mcp.New(), tinyGraph()); err != nil {
			t.Fatal(err)
		}
	}
	ra := p.RetryAfter()
	if ra < time.Second || ra > 30*time.Second {
		t.Fatalf("RetryAfter = %v, want within [1s, 30s]", ra)
	}
}
