// Package serve is the batched, backpressured scheduling pipeline
// behind schedserve. A fixed pool of workers pulls requests from a
// bounded admission queue; per-request deadlines propagate through
// context.Context into heuristics.RunContext, so a request that is
// cancelled or expires stops burning CPU at the next topo-order poll.
//
// Admission policy:
//
//   - single requests are admitted without blocking — a full queue
//     sheds the request immediately with ErrQueueFull so the HTTP
//     layer can answer 429 with a Retry-After hint;
//   - batch items are admitted with a blocking send (bounded by the
//     request context), which is the backpressure that keeps a large
//     batch from flooding the queue past its depth.
//
// Counter contract, relied on by the soak test:
//
//	submitted = admitted + shed
//	admitted  = completed + failed + cancelled   (once drained)
package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"schedcomp/internal/anytime"
	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/obs"
	"schedcomp/internal/sched"
	"schedcomp/internal/schedcache"
)

// ErrQueueFull is returned by Schedule when the admission queue is at
// capacity. The request did no scheduling work.
var ErrQueueFull = errors.New("serve: admission queue full")

// ErrClosed is returned for submissions after Close.
var ErrClosed = errors.New("serve: pipeline closed")

// Config sizes the pipeline. Zero values pick defaults.
type Config struct {
	// Workers is the number of scheduling goroutines. Default
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the admission queue. Default 4×Workers.
	QueueDepth int
	// Cache, when non-nil, short-circuits requests whose canonical
	// graph content was already scheduled by the same heuristic: hits
	// are served ahead of admission and never shed. Misses schedule
	// the canonically relabeled graph through the normal queue, so
	// every member of an isomorphism class gets the byte-identical
	// schedule (modulo its own node labels).
	Cache *schedcache.Cache
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	return c
}

// CacheStatus says whether a result came from the schedule cache.
type CacheStatus string

const (
	// CacheNone: the pipeline has no cache configured.
	CacheNone CacheStatus = ""
	// CacheHit: served from the cache (or coalesced onto a concurrent
	// identical computation) without scheduling.
	CacheHit CacheStatus = "hit"
	// CacheMiss: this request computed the schedule.
	CacheMiss CacheStatus = "miss"
)

// Result is one finished scheduling request. Best is set only for
// quality-tier (anytime) requests and carries the proven-gap
// provenance beside the schedule.
type Result struct {
	Index    int // position in the submitting batch; 0 for singles
	Schedule *sched.Schedule
	Best     *anytime.Result
	Cache    CacheStatus
	Err      error
}

type task struct {
	ctx   context.Context
	s     heuristics.Scheduler
	g     *dag.Graph
	index int
	// quality selects the anytime optimizer instead of s; budget is its
	// refinement allowance (the request context still bounds the run).
	quality bool
	budget  time.Duration
	enq     time.Time
	done    chan<- Result // buffered by the submitter; workers never block
}

// Pipeline is the worker pool. Create with New, shut down with Close.
type Pipeline struct {
	cfg   Config
	queue chan task
	wg    sync.WaitGroup

	// mu guards closed and, as a reader lock, every send to queue:
	// Close takes the write lock before closing the channel, so no
	// sender can race a send against the close.
	mu     sync.RWMutex
	closed bool

	cache *schedcache.Cache

	// Service-time ledger for RetryAfter, kept separately from the
	// obs histogram: the registry may be disabled (histograms then
	// drop observations), and obs.Default() is shared across
	// pipelines, so neither is a sound estimator input.
	svcCount atomic.Uint64
	svcNanos atomic.Int64

	depth     *obs.Gauge
	queueWait *obs.Histogram
	service   *obs.Histogram
	submitted *obs.Counter
	admitted  *obs.Counter
	shed      *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	cancelled *obs.Counter
}

// New starts a pipeline with cfg's worker pool, registering its
// instruments on reg (obs.Default() is the usual choice).
func New(cfg Config, reg *obs.Registry) *Pipeline {
	cfg = cfg.withDefaults()
	p := &Pipeline{
		cfg:   cfg,
		queue: make(chan task, cfg.QueueDepth),
		cache: cfg.Cache,

		depth: reg.Gauge("serve_queue_depth",
			"Requests waiting in the admission queue."),
		queueWait: reg.Histogram("serve_queue_wait_seconds",
			"Time from admission to a worker picking the request up.", obs.DefTimeBuckets),
		service: reg.Histogram("serve_service_seconds",
			"Worker time spent scheduling one request.", obs.DefTimeBuckets),
		submitted: reg.Counter("serve_submitted_total",
			"Requests offered to the pipeline."),
		admitted: reg.Counter("serve_admitted_total",
			"Requests accepted into the queue."),
		shed: reg.Counter("serve_shed_total",
			"Requests rejected because the queue was full."),
		completed: reg.Counter("serve_completed_total",
			"Requests that produced a validated schedule."),
		failed: reg.Counter("serve_failed_total",
			"Requests that errored for reasons other than cancellation."),
		cancelled: reg.Counter("serve_cancelled_total",
			"Requests abandoned because their context was cancelled or expired."),
	}
	p.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go p.worker()
	}
	return p
}

// Workers reports the configured pool size.
func (p *Pipeline) Workers() int { return p.cfg.Workers }

// QueueDepth reports the configured admission-queue bound.
func (p *Pipeline) QueueDepth() int { return p.cfg.QueueDepth }

// Schedule runs s on g through the pipeline. Admission never blocks:
// a full queue returns ErrQueueFull immediately. The call then waits
// for the worker, or for ctx — whichever comes first. On cancellation
// the queued work is still drained by a worker (and counted), but the
// caller gets ctx's error right away.
func (p *Pipeline) Schedule(ctx context.Context, s heuristics.Scheduler, g *dag.Graph) (*sched.Schedule, error) {
	p.submitted.Inc()
	done := make(chan Result, 1)
	t := task{ctx: ctx, s: s, g: g, enq: time.Now(), done: done}

	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, ErrClosed
	}
	select {
	case p.queue <- t:
		p.mu.RUnlock()
		p.admitted.Inc()
		p.depth.Add(1)
	default:
		p.mu.RUnlock()
		p.shed.Inc()
		return nil, ErrQueueFull
	}

	select {
	case r := <-done:
		return r.Schedule, r.Err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// submit is the blocking-admission path used for batch items: it
// waits for queue space (the backpressure bound) unless ctx ends
// first. Results arrive on done, which must have capacity for every
// outstanding submission so workers never block on delivery.
func (p *Pipeline) submit(ctx context.Context, s heuristics.Scheduler, g *dag.Graph, index int, done chan<- Result) error {
	p.submitted.Inc()
	t := task{ctx: ctx, s: s, g: g, index: index, enq: time.Now(), done: done}

	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		p.shed.Inc()
		return ErrClosed
	}
	// Blocking admission under the read lock is the backpressure
	// contract. A blocked submitter can stall Close's write lock only
	// until a worker (which never takes p.mu) drains a slot or ctx
	// fires, so liveness holds and closed/queue stay consistent.
	select { //lint:lockheld
	case p.queue <- t:
		p.admitted.Inc()
		p.depth.Add(1)
		return nil
	case <-ctx.Done():
		p.shed.Inc()
		return ctx.Err()
	}
}

func (p *Pipeline) worker() {
	defer p.wg.Done()
	// Each task is scheduled independently; the schedule produced for a
	// given graph does not depend on which worker dequeued it or in what
	// order — receive ordering only decides who does the work.
	for t := range p.queue { //lint:sorted
		p.depth.Add(-1)
		p.queueWait.Observe(time.Since(t.enq).Seconds())
		if err := t.ctx.Err(); err != nil {
			// Died in the queue: no scheduling work, no service time.
			p.cancelled.Inc()
			t.done <- Result{Index: t.index, Err: err}
			continue
		}
		t0 := time.Now()
		var sc *sched.Schedule
		var best *anytime.Result
		var err error
		if t.quality {
			best, err = anytime.Optimize(t.ctx, t.g, anytime.Options{Budget: t.budget})
			if best != nil {
				sc = best.Schedule
			}
		} else {
			sc, err = heuristics.RunContext(t.ctx, t.s, t.g)
		}
		elapsed := time.Since(t0)
		p.service.Observe(elapsed.Seconds())
		p.svcCount.Add(1)
		p.svcNanos.Add(int64(elapsed))
		switch {
		case err == nil:
			p.completed.Inc()
		case heuristics.IsCancellation(err):
			p.cancelled.Inc()
			sc, best = nil, nil
		default:
			p.failed.Inc()
		}
		t.done <- Result{Index: t.index, Schedule: sc, Best: best, Err: err}
	}
}

// RetryAfter estimates how long a shed client should wait before
// retrying: the observed mean service time times the number of
// requests one worker slot has in front of it. Clamped to [1s, 30s];
// 1s on a cold pipeline that has completed nothing yet.
//
// The estimate reads the pipeline's own atomic service-time ledger,
// not the obs histogram: a freshly booted server with the registry
// disabled (or several pipelines sharing obs.Default()) would
// otherwise compute the hint from zero or foreign observations, and
// the all-integer math cannot produce NaN or a zero header value.
func (p *Pipeline) RetryAfter() time.Duration {
	n := p.svcCount.Load()
	if n == 0 {
		return time.Second
	}
	mean := p.svcNanos.Load() / int64(n)
	est := time.Duration(mean * int64(p.cfg.QueueDepth) / int64(p.cfg.Workers))
	if est < time.Second {
		return time.Second
	}
	if est > 30*time.Second {
		return 30 * time.Second
	}
	return est
}

// Close stops admission and waits for the workers to drain every
// queued task. Safe to call twice; submissions after Close get
// ErrClosed.
func (p *Pipeline) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.queue)
	p.mu.Unlock()
	p.wg.Wait()
}
