package serve_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/mcp"
	"schedcomp/internal/heuristics/schedtest"
	"schedcomp/internal/obs"
	"schedcomp/internal/sched"
	"schedcomp/internal/serve"
)

// blockSched is a plain (context-oblivious) scheduler that parks in
// Schedule until released, signalling on started when a worker picks
// it up. It stands in for a long-running heuristic.
type blockSched struct {
	started chan struct{}
	release chan struct{}
}

func (b *blockSched) Name() string { return "BLOCK" }

func (b *blockSched) Schedule(g *dag.Graph) (*sched.Placement, error) {
	if b.started != nil {
		b.started <- struct{}{}
	}
	<-b.release
	return sched.Serial(g)
}

func tinyGraph() *dag.Graph {
	g := dag.New("tiny")
	a := g.AddNode(3)
	b := g.AddNode(2)
	g.MustAddEdge(a, b, 1)
	return g
}

func newTestPipeline(t *testing.T, cfg serve.Config) (*serve.Pipeline, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	p := serve.New(cfg, reg)
	t.Cleanup(p.Close)
	return p, reg
}

// waitCounter polls until the counter reaches want or the deadline
// passes; counters are bumped by workers asynchronously.
func waitCounter(t *testing.T, c *obs.Counter, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %d, want %d", c.Value(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestScheduleShedsWhenQueueFull(t *testing.T) {
	p, reg := newTestPipeline(t, serve.Config{Workers: 1, QueueDepth: 1})
	g := tinyGraph()
	bs := &blockSched{started: make(chan struct{}, 2), release: make(chan struct{})}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(1)
	go func() { defer wg.Done(); _, errs[0] = p.Schedule(context.Background(), bs, g) }()
	<-bs.started // the single worker is now parked inside Schedule
	wg.Add(1)
	go func() { defer wg.Done(); _, errs[1] = p.Schedule(context.Background(), bs, g) }()
	waitCounter(t, reg.Counter("serve_admitted_total", ""), 2) // second request sits in the queue

	if _, err := p.Schedule(context.Background(), bs, g); !errors.Is(err, serve.ErrQueueFull) {
		t.Fatalf("third request: err = %v, want ErrQueueFull", err)
	}
	if ra := p.RetryAfter(); ra < time.Second {
		t.Errorf("RetryAfter = %v, want >= 1s", ra)
	}

	close(bs.release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
		}
	}
	if got := reg.Counter("serve_shed_total", "").Value(); got != 1 {
		t.Errorf("shed = %d, want 1", got)
	}
	if got := reg.Counter("serve_submitted_total", "").Value(); got != 3 {
		t.Errorf("submitted = %d, want 3", got)
	}
}

func TestScheduleDeadlineReturnsEarly(t *testing.T) {
	p, reg := newTestPipeline(t, serve.Config{Workers: 1, QueueDepth: 4})
	bs := &blockSched{release: make(chan struct{})}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.Schedule(ctx, bs, tinyGraph())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("caller waited %v for a 30ms deadline", elapsed)
	}

	// The worker is still parked in the context-oblivious scheduler;
	// once released, RunContext's post-check must discard the stale
	// placement and count a cancellation, not a completion.
	close(bs.release)
	waitCounter(t, reg.Counter("serve_cancelled_total", ""), 1)
	if got := reg.Counter("serve_completed_total", "").Value(); got != 0 {
		t.Errorf("completed = %d, want 0", got)
	}
}

func TestScheduleBatchEmitsInInputOrder(t *testing.T) {
	p, reg := newTestPipeline(t, serve.Config{Workers: 4, QueueDepth: 4})
	rng := rand.New(rand.NewSource(7))
	const n = 24 // several times the queue depth: exercises blocking admission
	graphs := make([]*dag.Graph, n)
	for i := range graphs {
		graphs[i] = schedtest.RandomDAG(rng, 10+rng.Intn(30), 0.2)
	}

	var got []serve.Result
	err := p.ScheduleBatch(context.Background(),
		func() heuristics.Scheduler { return mcp.New() },
		graphs,
		func(r serve.Result) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("emitted %d results, want %d", len(got), n)
	}
	for i, r := range got {
		if r.Index != i {
			t.Fatalf("result %d has index %d: emission out of input order", i, r.Index)
		}
		if r.Err != nil {
			t.Errorf("item %d: %v", i, r.Err)
			continue
		}
		if err := r.Schedule.Validate(); err != nil {
			t.Errorf("item %d: invalid schedule: %v", i, err)
		}
	}
	if got := reg.Counter("serve_completed_total", "").Value(); got != n {
		t.Errorf("completed = %d, want %d", got, n)
	}
}

// TestScheduleBatchCancellation is the regression test for the batch
// cancellation contract: once the batch context is cancelled, every
// remaining item is emitted with context.Canceled and a nil Schedule —
// a partial placement must never reach the stream — and emission stays
// aligned with input order.
func TestScheduleBatchCancellation(t *testing.T) {
	p, _ := newTestPipeline(t, serve.Config{Workers: 1, QueueDepth: 2})
	rng := rand.New(rand.NewSource(8))
	graphs := []*dag.Graph{
		schedtest.RandomDAG(rng, 12, 0.2),
		schedtest.RandomDAG(rng, 12, 0.2),
		schedtest.RandomDAG(rng, 12, 0.2),
		schedtest.RandomDAG(rng, 12, 0.2),
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bs := &blockSched{started: make(chan struct{}, 1), release: make(chan struct{})}
	go func() {
		<-bs.started // item 1 is on the worker
		cancel()
		close(bs.release)
	}()

	// Item 0 schedules normally; item 1 blocks until the batch is
	// cancelled; items 2 and 3 die in the queue or at admission.
	calls := 0
	factory := func() heuristics.Scheduler {
		calls++
		if calls == 2 {
			return bs
		}
		return mcp.New()
	}

	var got []serve.Result
	err := p.ScheduleBatch(ctx, factory, graphs,
		func(r serve.Result) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(graphs) {
		t.Fatalf("emitted %d results, want %d", len(got), len(graphs))
	}
	if got[0].Err != nil || got[0].Schedule == nil {
		t.Fatalf("item 0 should complete before the cancellation: %+v", got[0])
	}
	for i, r := range got {
		if r.Index != i {
			t.Fatalf("result %d has index %d: out of order", i, r.Index)
		}
		if i == 0 {
			continue
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("item %d: err = %v, want context.Canceled", i, r.Err)
		}
		if r.Schedule != nil {
			t.Errorf("item %d: a schedule reached the stream after cancellation", i)
		}
	}
}

func TestScheduleAfterCloseReturnsErrClosed(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	p := serve.New(serve.Config{Workers: 2, QueueDepth: 2}, reg)
	p.Close()
	p.Close() // idempotent
	if _, err := p.Schedule(context.Background(), mcp.New(), tinyGraph()); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	var got []serve.Result
	err := p.ScheduleBatch(context.Background(),
		func() heuristics.Scheduler { return mcp.New() },
		[]*dag.Graph{tinyGraph()},
		func(r serve.Result) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !errors.Is(got[0].Err, serve.ErrClosed) {
		t.Fatalf("batch on closed pipeline: %+v", got)
	}
}

func TestRetryAfterDefaultsToOneSecond(t *testing.T) {
	p, _ := newTestPipeline(t, serve.Config{Workers: 1, QueueDepth: 1})
	if got := p.RetryAfter(); got != time.Second {
		t.Fatalf("RetryAfter with no observations = %v, want 1s", got)
	}
}
