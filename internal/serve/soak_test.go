package serve_test

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/heuristics/schedtest"
	"schedcomp/internal/obs"
	"schedcomp/internal/sched"
	"schedcomp/internal/serve"

	_ "schedcomp/internal/heuristics/dsc"
	_ "schedcomp/internal/heuristics/etf"
	_ "schedcomp/internal/heuristics/hu"
	_ "schedcomp/internal/heuristics/lc"
	_ "schedcomp/internal/heuristics/mcp"
)

// soakDuration caps the hammer phase. The whole test (hammer + drain)
// stays well under 30s even with the race detector on.
func soakDuration(t *testing.T) time.Duration {
	if testing.Short() {
		return 500 * time.Millisecond
	}
	return 3 * time.Second
}

// TestSoakPipeline hammers the pipeline from concurrent clients with a
// mix of single and batch requests, random client-side cancellations,
// and deliberate queue-full bursts, then checks that nothing leaked:
// every goroutine is gone after Close and the obs counters reconcile
// exactly (submitted = admitted + shed, admitted = completed + failed
// + cancelled).
func TestSoakPipeline(t *testing.T) {
	baseline := runtime.NumGoroutine()

	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	p := serve.New(serve.Config{Workers: 4, QueueDepth: 8}, reg)

	soakNames := []string{"MCP", "ETF", "HU", "LC", "DSC"}
	deadline := time.Now().Add(soakDuration(t))
	var cancellations, sheds, schedules atomic.Uint64

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				name := soakNames[rng.Intn(len(soakNames))]
				s, err := heuristics.New(name)
				if err != nil {
					t.Error(err)
					return
				}
				g := schedtest.RandomDAG(rng, 5+rng.Intn(60), 0.15)

				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if rng.Intn(5) == 0 {
					// Client abandons quickly: deadlines from 0 (already
					// expired) to 2ms, often mid-schedule.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(3))*time.Millisecond)
				}

				switch rng.Intn(4) {
				case 0: // batch of a few graphs
					graphs := make([]*dag.Graph, 2+rng.Intn(4))
					for i := range graphs {
						graphs[i] = schedtest.RandomDAG(rng, 5+rng.Intn(40), 0.15)
					}
					err = p.ScheduleBatch(ctx,
						func() heuristics.Scheduler { s, _ := heuristics.New(name); return s },
						graphs,
						func(r serve.Result) error {
							soakCheck(t, r.Schedule, r.Err, &cancellations, &sheds, &schedules)
							return nil
						})
					if err != nil {
						t.Errorf("batch: %v", err)
					}
				case 1: // burst of singles to slam the queue full
					var burst sync.WaitGroup
					for i := 0; i < 12; i++ {
						burst.Add(1)
						go func() {
							defer burst.Done()
							sc, err := p.Schedule(ctx, s, g)
							soakCheck(t, sc, err, &cancellations, &sheds, &schedules)
						}()
					}
					burst.Wait()
				default: // plain single request
					sc, err := p.Schedule(ctx, s, g)
					soakCheck(t, sc, err, &cancellations, &sheds, &schedules)
				}
				cancel()
			}
		}(int64(c) + 1)
	}
	wg.Wait()
	p.Close()

	if schedules.Load() == 0 {
		t.Error("soak produced no successful schedules")
	}
	t.Logf("soak: %d schedules, %d sheds, %d cancellations",
		schedules.Load(), sheds.Load(), cancellations.Load())

	// Counter reconciliation: everything offered was either shed or
	// admitted, and everything admitted reached exactly one terminal
	// counter once the pipeline drained.
	submitted := reg.Counter("serve_submitted_total", "").Value()
	admitted := reg.Counter("serve_admitted_total", "").Value()
	shed := reg.Counter("serve_shed_total", "").Value()
	completed := reg.Counter("serve_completed_total", "").Value()
	failed := reg.Counter("serve_failed_total", "").Value()
	cancelled := reg.Counter("serve_cancelled_total", "").Value()
	if submitted != admitted+shed {
		t.Errorf("submitted (%d) != admitted (%d) + shed (%d)", submitted, admitted, shed)
	}
	if admitted != completed+failed+cancelled {
		t.Errorf("admitted (%d) != completed (%d) + failed (%d) + cancelled (%d)",
			admitted, completed, failed, cancelled)
	}
	if failed != 0 {
		t.Errorf("failed = %d on well-formed graphs, want 0", failed)
	}
	if depth := reg.Gauge("serve_queue_depth", "").Value(); depth != 0 {
		t.Errorf("queue depth after drain = %d, want 0", depth)
	}

	// Goroutine leak check: abandoned requests and closed workers must
	// all unwind. Poll briefly — runtime bookkeeping lags Close.
	settle := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(settle) {
			t.Fatalf("goroutines: %d at start, %d after Close — leak", baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// soakCheck classifies one result: success must validate, and the only
// acceptable errors under soak are sheds and client cancellations.
func soakCheck(t *testing.T, sc *sched.Schedule, err error,
	cancellations, sheds, schedules *atomic.Uint64) {
	switch {
	case err == nil:
		schedules.Add(1)
		if verr := sc.Validate(); verr != nil {
			t.Errorf("invalid schedule under load: %v", verr)
		}
	case errors.Is(err, serve.ErrQueueFull):
		sheds.Add(1)
	case heuristics.IsCancellation(err):
		cancellations.Add(1)
	default:
		t.Errorf("unexpected error under soak: %v", err)
	}
}
