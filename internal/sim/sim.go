// Package sim simulates the execution of a placement on a processor
// network with contended, unit-capacity links — a stricter execution
// model than the paper's (which assumes contention-free communication,
// one hop everywhere). It answers the question the topology example
// raises: what do the heuristics' schedules actually cost on a real
// interconnect?
//
// Model: tasks run in their placement order on their assigned
// processor. When a task finishes it immediately sends one message per
// successor on a different processor; a message occupies every link on
// its (fixed, shortest-path) route in sequence, store-and-forward,
// waiting whenever a link is busy. A task starts when its processor is
// free and all its input messages have arrived.
//
// Link reservations are made in task-commit order (tasks are committed
// in nondecreasing start times, the same greedy order sched.Build
// uses); a fully chronological message-level simulation could reorder
// two messages injected between commits, so treat the result as a
// deterministic model, not a cycle-accurate one.
package sim

import (
	"fmt"

	"schedcomp/internal/dag"
	"schedcomp/internal/sched"
	"schedcomp/internal/topology"
)

// Result is the simulated schedule plus traffic statistics.
type Result struct {
	Schedule *sched.Schedule
	// Messages is the number of cross-processor messages sent.
	Messages int
	// LinkTime is the total time messages spent in the network
	// (transfer plus queueing), summed over messages.
	LinkTime int64
	// MaxQueueDelay is the largest wait any message spent blocked on
	// busy links beyond its uncontended transfer time.
	MaxQueueDelay int64
}

// Run simulates the placement on the network and returns the resulting
// schedule (validated against the network's uncontended delay as a
// lower bound: contention can only delay messages, never speed them
// up).
func Run(g *dag.Graph, pl *sched.Placement, net *topology.Network) (*Result, error) {
	if net == nil {
		return nil, fmt.Errorf("sim: nil network")
	}
	if err := pl.Check(g); err != nil {
		return nil, err
	}
	// Processor indices are physical network positions; never compact.
	if !net.Unbounded() && len(pl.Order) > net.NumProcs() {
		return nil, fmt.Errorf("sim: placement uses %d processors, network has %d",
			len(pl.Order), net.NumProcs())
	}
	n := g.NumNodes()
	numProcs := len(pl.Order)
	res := &Result{Schedule: &sched.Schedule{
		Graph:    g,
		ByNode:   make([]sched.Assignment, n),
		NumProcs: numProcs,
	}}
	if n == 0 {
		return res, nil
	}

	traffic := topology.NewTraffic(net)
	done := make([]bool, n)
	finish := make([]int64, n)
	// arrival[v] is the max over already-reserved input messages.
	arrival := make([]int64, n)
	head := make([]int, numProcs)
	free := make([]int64, numProcs)
	remaining := n

	commit := func(v dag.NodeID, p int, start int64) {
		f := start + g.Weight(v)
		res.Schedule.ByNode[v] = sched.Assignment{Node: v, Proc: p, Start: start, Finish: f}
		done[v] = true
		finish[v] = f
		free[p] = f
		head[p]++
		remaining--
		if f > res.Schedule.Makespan {
			res.Schedule.Makespan = f
		}
		// Send messages to successors on other processors, reserving
		// links now (commit order).
		for _, a := range g.Succs(v) {
			q := pl.Proc[a.To]
			if q == p {
				if f > arrival[a.To] {
					arrival[a.To] = f
				}
				continue
			}
			res.Messages++
			at := traffic.Send(p, q, f, a.Weight)
			res.LinkTime += at - f
			if d := (at - f) - net.Delay(p, q, a.Weight); d > res.MaxQueueDelay {
				res.MaxQueueDelay = d
			}
			if at > arrival[a.To] {
				arrival[a.To] = at
			}
		}
	}

	for remaining > 0 {
		bestProc := -1
		var bestStart int64
		var bestNode dag.NodeID
		for p := 0; p < numProcs; p++ {
			if head[p] >= len(pl.Order[p]) {
				continue
			}
			v := pl.Order[p][head[p]]
			ready := true
			for _, e := range g.Preds(v) {
				if !done[e.To] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			start := arrival[v]
			if free[p] > start {
				start = free[p]
			}
			if bestProc == -1 || start < bestStart {
				bestProc, bestStart, bestNode = p, start, v
			}
		}
		if bestProc == -1 {
			return nil, fmt.Errorf("sim: placement order deadlocks against precedence (%d tasks left)", remaining)
		}
		commit(bestNode, bestProc, bestStart)
	}

	// Self-check: the result must at least satisfy the uncontended hop
	// model (contention only adds delay to each individual message).
	lower := func(from, to int, w int64) int64 { return net.Delay(from, to, w) }
	if err := res.Schedule.ValidateWith(lower); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return res, nil
}
