package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics/mh"
	"schedcomp/internal/sched"
	"schedcomp/internal/topology"
)

// fanout builds root -> k children, each child of weight w, edges e.
func fanout(k int, w, e int64) *dag.Graph {
	g := dag.New("fanout")
	r := g.AddNode(w)
	for i := 0; i < k; i++ {
		v := g.AddNode(w)
		g.MustAddEdge(r, v, e)
	}
	return g
}

// spreadPlacement puts every task on its own processor.
func spreadPlacement(g *dag.Graph) *sched.Placement {
	order, _ := g.TopoOrder()
	pl := sched.NewPlacement(g.NumNodes())
	for i, v := range order {
		pl.Assign(v, i)
	}
	return pl
}

func TestUncontendedMatchesHopModel(t *testing.T) {
	// One message only: contention cannot occur; the simulated times
	// equal BuildWith under the hop delay.
	g := dag.New("pair")
	a := g.AddNode(10)
	b := g.AddNode(10)
	g.MustAddEdge(a, b, 7)
	net := topology.Ring(4)
	pl := sched.NewPlacement(2)
	pl.Assign(a, 0)
	pl.Assign(b, 1)
	res, err := Run(g, pl, net)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.ByNode[b].Start != 17 { // 10 + 1 hop x 7
		t.Errorf("start = %d, want 17", res.Schedule.ByNode[b].Start)
	}
	if res.Messages != 1 || res.MaxQueueDelay != 0 {
		t.Errorf("messages=%d queueDelay=%d", res.Messages, res.MaxQueueDelay)
	}
}

func TestStarHubContention(t *testing.T) {
	// Four messages from the hub to distinct leaves of a star share
	// the hub's links? No — each leaf has its own link; route hub->leaf
	// is one private link, so no contention. Place the root on a LEAF:
	// then every message crosses the root leaf's single uplink and
	// they serialize.
	g := fanout(3, 10, 20)
	net := topology.Star(5)
	pl := sched.NewPlacement(4)
	pl.Assign(0, 1) // root on leaf processor 1
	pl.Assign(1, 2)
	pl.Assign(2, 3)
	pl.Assign(3, 4)
	res, err := Run(g, pl, net)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxQueueDelay == 0 {
		t.Error("expected queueing on the shared uplink")
	}
	// Uncontended: start = 10 + 2 hops x 20 = 50 for each child. With
	// serialization on the first link the last child must start later.
	var latest int64
	for v := 1; v <= 3; v++ {
		if s := res.Schedule.ByNode[v].Start; s > latest {
			latest = s
		}
	}
	if latest <= 50 {
		t.Errorf("latest child start = %d, want > 50 due to contention", latest)
	}
}

func TestFullyConnectedPairLinkSerializes(t *testing.T) {
	// Two messages between the same processor pair share that pair's
	// link and serialize even on a fully connected machine.
	g := dag.New("two-msgs")
	a1 := g.AddNode(10)
	a2 := g.AddNode(10)
	b1 := g.AddNode(5)
	b2 := g.AddNode(5)
	g.MustAddEdge(a1, b1, 50)
	g.MustAddEdge(a2, b2, 50)
	net := topology.FullyConnected(2)
	pl := sched.NewPlacement(4)
	pl.Assign(a1, 0)
	pl.Assign(a2, 0)
	pl.Assign(b1, 1)
	pl.Assign(b2, 1)
	res, err := Run(g, pl, net)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxQueueDelay == 0 {
		t.Error("expected the second message to queue behind the first")
	}
}

func TestTooManyProcsRejected(t *testing.T) {
	g := fanout(5, 10, 1)
	pl := spreadPlacement(g)
	if _, err := Run(g, pl, topology.Ring(3)); err == nil {
		t.Fatal("expected processor-count error")
	}
}

func TestNilNetworkRejected(t *testing.T) {
	g := fanout(2, 10, 1)
	if _, err := Run(g, spreadPlacement(g), nil); err == nil {
		t.Fatal("expected nil-network error")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := dag.New("empty")
	pl := sched.NewPlacement(0)
	res, err := Run(g, pl, topology.Ring(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan != 0 {
		t.Error("empty makespan nonzero")
	}
}

// Property: simulated schedules on random graphs are valid under the
// hop-delay lower bound and contention never reduces the makespan
// below the uncontended rebuild of the same placement.
func TestQuickContentionOnlyDelays(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := dag.New("q")
		for i := 0; i < n; i++ {
			g.AddNode(int64(1 + rng.Intn(40)))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(100) < 20 {
					g.MustAddEdge(dag.NodeID(i), dag.NodeID(j), int64(rng.Intn(60)))
				}
			}
		}
		net := topology.Mesh(2, 2)
		m := &mh.MH{Net: net}
		pl, err := m.Schedule(g)
		if err != nil {
			return false
		}
		res, err := Run(g, pl, net)
		if err != nil {
			return false
		}
		// Rebuild the same placement uncontended for comparison.
		pl2, err := m.Schedule(g)
		if err != nil {
			return false
		}
		base, err := sched.BuildWith(g, pl2, func(a, b int, w int64) int64 { return net.Delay(a, b, w) })
		if err != nil {
			return false
		}
		return res.Schedule.Makespan >= base.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
