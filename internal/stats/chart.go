package stats

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line: a name and one value per x position.
type Series struct {
	Name   string
	Values []float64
}

// Chart renders a terminal line chart: x positions are category labels,
// each series is plotted with the first letter of its name. It is used
// to reproduce the paper's figures in text form.
func Chart(title string, xlabels []string, series []Series, height int) string {
	if height < 4 {
		height = 4
	}
	if len(xlabels) == 0 || len(series) == 0 {
		return title + "\n(no data)\n"
	}
	// Non-finite values (NaN/±Inf from degenerate upstream ratios) are
	// excluded from the range and never plotted: a NaN would poison the
	// axis labels and an Inf row index would be out of range.
	min, max := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	if min > 0 || math.IsInf(min, 1) {
		min = 0
	}
	if max <= min {
		max = min + 1
	}

	const colWidth = 12
	width := colWidth * len(xlabels)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	// Both denominators are guarded: max > min always holds after the
	// clamps above, and rows is >= 1 even if the height clamp is ever
	// relaxed. The result is clamped so a rounding edge case can never
	// index outside the grid.
	rows := float64(height - 1)
	if rows < 1 {
		rows = 1
	}
	rowOf := func(v float64) int {
		f := (v - min) / (max - min)
		r := int(math.Round(f * rows))
		if r < 0 {
			r = 0
		}
		if r > height-1 {
			r = height - 1
		}
		return height - 1 - r
	}
	colOf := func(x int) int { return x*colWidth + colWidth/2 }

	// Plot markers (one distinct glyph per series); a '*' notes
	// overlapping points.
	markers := []byte("CDMHUoxv+#@%")
	for si, s := range series {
		marker := markers[si%len(markers)]
		for x, v := range s.Values {
			if x >= len(xlabels) {
				break
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			r, c := rowOf(v), colOf(x)
			switch grid[r][c] {
			case ' ':
				grid[r][c] = marker
			default:
				grid[r][c] = '*'
			}
		}
	}

	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	labelW := 10
	for r := 0; r < height; r++ {
		v := max - (max-min)*float64(r)/rows
		fmt.Fprintf(&b, "%*.2f |%s\n", labelW, v, string(grid[r]))
	}
	b.WriteString(strings.Repeat(" ", labelW+1) + "+" + strings.Repeat("-", width) + "\n")
	b.WriteString(strings.Repeat(" ", labelW+2))
	for _, l := range xlabels {
		if len(l) > colWidth-1 {
			l = l[:colWidth-1]
		}
		fmt.Fprintf(&b, "%-*s", colWidth, l)
	}
	b.WriteByte('\n')

	names := make([]string, len(series))
	for i, s := range series {
		names[i] = fmt.Sprintf("%c=%s", markers[i%len(markers)], s.Name)
	}
	b.WriteString("legend: " + strings.Join(names, " ") + " (*=overlap)\n")
	return b.String()
}
