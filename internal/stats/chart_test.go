package stats

import (
	"math"
	"strings"
	"testing"
)

// TestChartDegenerateInputs drives Chart through the degenerate shapes
// an arbitrary corpus can produce — NaN/Inf ratios, constant and
// negative ranges, tiny heights — and asserts it neither panics nor
// emits non-finite axis labels.
func TestChartDegenerateInputs(t *testing.T) {
	cases := []struct {
		name    string
		xlabels []string
		series  []Series
		height  int
	}{
		{"height-one", []string{"a", "b"}, []Series{{Name: "S", Values: []float64{1, 2}}}, 1},
		{"height-zero", []string{"a"}, []Series{{Name: "S", Values: []float64{5}}}, 0},
		{"negative-height", []string{"a"}, []Series{{Name: "S", Values: []float64{5}}}, -3},
		{"all-equal", []string{"a", "b", "c"}, []Series{{Name: "S", Values: []float64{7, 7, 7}}}, 6},
		{"all-equal-negative", []string{"a", "b"}, []Series{{Name: "S", Values: []float64{-3, -3}}}, 6},
		{"nan-values", []string{"a", "b", "c"}, []Series{{Name: "S", Values: []float64{1, math.NaN(), 2}}}, 6},
		{"all-nan", []string{"a", "b"}, []Series{{Name: "S", Values: []float64{math.NaN(), math.NaN()}}}, 6},
		{"pos-inf", []string{"a", "b"}, []Series{{Name: "S", Values: []float64{1, math.Inf(1)}}}, 6},
		{"neg-inf", []string{"a", "b"}, []Series{{Name: "S", Values: []float64{math.Inf(-1), 1}}}, 6},
		{"mixed-inf-nan", []string{"a"}, []Series{{Name: "S", Values: []float64{math.Inf(1), math.Inf(-1), math.NaN()}}}, 4},
		{"empty-values", []string{"a", "b"}, []Series{{Name: "S", Values: nil}}, 6},
		{"more-values-than-labels", []string{"a"}, []Series{{Name: "S", Values: []float64{1, 2, 3, 4}}}, 6},
		{"many-series-one-point", []string{"a"}, []Series{
			{Name: "A", Values: []float64{1}}, {Name: "B", Values: []float64{1}},
		}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := Chart("Fig "+tc.name, tc.xlabels, tc.series, tc.height)
			if out == "" {
				t.Fatal("empty chart")
			}
			if !strings.Contains(out, "Fig "+tc.name) {
				t.Fatalf("missing title:\n%s", out)
			}
			// The title echoes the case name, so only check the body
			// (axis labels and grid) for non-finite leakage.
			_, body, _ := strings.Cut(out, "\n")
			for _, bad := range []string{"NaN", "nan", "Inf", "inf"} {
				if strings.Contains(body, bad) {
					t.Fatalf("chart contains %q:\n%s", bad, out)
				}
			}
		})
	}
}

// TestChartFiniteValuesStillPlotted: the NaN guard must not drop the
// finite points of a series that also contains non-finite ones.
func TestChartFiniteValuesStillPlotted(t *testing.T) {
	out := Chart("Fig", []string{"a", "b"}, []Series{{Name: "Solo", Values: []float64{1, math.NaN()}}}, 6)
	// The first series plots with marker 'C'; the finite point must
	// land on the grid even though its sibling value is NaN.
	if !strings.Contains(out, "|      C") || !strings.Contains(out, "legend: C=Solo") {
		t.Fatalf("finite point not plotted:\n%s", out)
	}
}
