// Package stats provides the small statistical helpers and the aligned
// text table renderer used by the experiment reports.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MinMax returns the extrema of xs; both 0 for an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Median returns the median of xs (0 for an empty slice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs with linear
// interpolation between order statistics; 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return s[n-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// CountIf returns how many elements satisfy pred.
func CountIf(xs []float64, pred func(float64) bool) int {
	n := 0
	for _, x := range xs {
		if pred(x) {
			n++
		}
	}
	return n
}

// Pearson returns the Pearson correlation coefficient between xs and
// ys (0 when undefined: mismatched or short inputs, or zero variance).
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	// Zero-variance guard. The sums are non-negative, so <= is the
	// same predicate as == here without exact float equality (and NaN
	// inputs still fall through to the NaN quotient below).
	if sxx <= 0 || syy <= 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Acc accumulates a running mean and count. The zero value is ready to
// use.
type Acc struct {
	sum float64
	n   int
}

// Add records one observation.
func (a *Acc) Add(x float64) {
	a.sum += x
	a.n++
}

// Mean returns the running mean (0 before any observation).
func (a *Acc) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// N returns the number of observations.
func (a *Acc) N() int { return a.n }

// Sum returns the accumulated total.
func (a *Acc) Sum() float64 { return a.sum }
