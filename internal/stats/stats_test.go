package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean of empty should be 0")
	}
}

func TestStdDev(t *testing.T) {
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2) {
		t.Errorf("StdDev = %v, want 2", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev of singleton should be 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v,%v", min, max)
	}
	if min, max = MinMax(nil); min != 0 || max != 0 {
		t.Error("empty MinMax should be 0,0")
	}
}

func TestMedian(t *testing.T) {
	if !almost(Median([]float64{5, 1, 3}), 3) {
		t.Error("odd median wrong")
	}
	if !almost(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Error("even median wrong")
	}
	if Median(nil) != 0 {
		t.Error("empty median should be 0")
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Error("Median sorted the caller's slice")
	}
}

func TestCountIf(t *testing.T) {
	n := CountIf([]float64{0.5, 1.5, 0.9, 2}, func(x float64) bool { return x < 1 })
	if n != 2 {
		t.Errorf("CountIf = %d, want 2", n)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if !almost(Quantile(xs, 0), 1) || !almost(Quantile(xs, 1), 5) {
		t.Error("extremes wrong")
	}
	if !almost(Quantile(xs, 0.5), 3) {
		t.Errorf("median = %v", Quantile(xs, 0.5))
	}
	if !almost(Quantile(xs, 0.25), 2) {
		t.Errorf("q25 = %v", Quantile(xs, 0.25))
	}
	if !almost(Quantile([]float64{10}, 0.9), 10) {
		t.Error("singleton wrong")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty should be 0")
	}
	// Interpolation: q=0.5 over {1,2} = 1.5.
	if !almost(Quantile([]float64{2, 1}, 0.5), 1.5) {
		t.Errorf("interpolated = %v", Quantile([]float64{2, 1}, 0.5))
	}
	// Must not mutate input.
	in := []float64{3, 1, 2}
	Quantile(in, 0.5)
	if in[0] != 3 {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestAcc(t *testing.T) {
	var a Acc
	if a.Mean() != 0 || a.N() != 0 {
		t.Error("zero Acc not zero")
	}
	a.Add(2)
	a.Add(4)
	if !almost(a.Mean(), 3) || a.N() != 2 || !almost(a.Sum(), 6) {
		t.Errorf("Acc: mean %v n %d sum %v", a.Mean(), a.N(), a.Sum())
	}
}

func TestQuickMeanBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		// Bounded magnitudes so the sum cannot overflow.
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		m := Mean(xs)
		min, max := MinMax(xs)
		return m >= min-1e-9 && m <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Title", "", "A", "B")
	tbl.AddRow("row1", F(1.234), I(7))
	tbl.AddRow("longer row label", F(0.5), I(42))
	out := tbl.String()
	for _, want := range []string{"Title", "A", "B", "row1", "1.23", "42", "longer row label"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableShortRowsPadded(t *testing.T) {
	tbl := NewTable("", "A", "B", "C")
	tbl.AddRow("only")
	out := tbl.String()
	if !strings.Contains(out, "only") {
		t.Error("short row lost")
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("ignored", "a", "b")
	tbl.AddRow("plain", `has "quote", and comma`)
	out := tbl.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], `"has ""quote"", and comma"`) {
		t.Errorf("quoting wrong: %q", lines[1])
	}
	if strings.Contains(out, "ignored") {
		t.Error("CSV should not include the title")
	}
}

func TestPearson(t *testing.T) {
	if got := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); !almost(got, 1) {
		t.Errorf("perfect correlation = %v", got)
	}
	if got := Pearson([]float64{1, 2, 3}, []float64{6, 4, 2}); !almost(got, -1) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if got := Pearson([]float64{1, 2}, []float64{5, 5}); got != 0 {
		t.Errorf("zero variance = %v", got)
	}
	if got := Pearson([]float64{1}, []float64{1}); got != 0 {
		t.Errorf("short input = %v", got)
	}
	if got := Pearson([]float64{1, 2}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("mismatched input = %v", got)
	}
}

func TestChartRenders(t *testing.T) {
	out := Chart("Fig", []string{"x1", "x2", "x3"},
		[]Series{
			{Name: "CLANS", Values: []float64{0.1, 0.2, 0.3}},
			{Name: "DSC", Values: []float64{0.3, 0.2, 0.1}},
		}, 8)
	for _, want := range []string{"Fig", "x1", "legend", "CLANS", "DSC"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart("Fig", nil, nil, 8)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart output: %q", out)
	}
}

func TestChartConstantSeries(t *testing.T) {
	// All-equal values must not divide by zero.
	out := Chart("Fig", []string{"a"}, []Series{{Name: "S", Values: []float64{0}}}, 6)
	if out == "" {
		t.Error("constant chart empty")
	}
}
