package stats

import (
	"fmt"
	"strings"
)

// Table is a titled grid of strings rendered with aligned columns, the
// output format of every experiment driver.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns an empty table with the given title and column
// headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row of cells. Short rows are padded with empty
// cells at render time.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// F formats a float with the paper's two-decimal convention.
func F(v float64) string { return fmt.Sprintf("%.2f", v) }

// I formats an integer cell.
func I(v int) string { return fmt.Sprintf("%d", v) }

// CSV renders the table as comma-separated values (header + rows, no
// title), quoting cells that contain commas or quotes.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// String renders the table with a title line, a header, a rule, and
// aligned rows.
func (t *Table) String() string {
	ncols := len(t.Columns)
	for _, r := range t.Rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Columns)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(ncols-1)))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
