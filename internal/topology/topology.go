// Package topology models homogeneous processor interconnection
// networks. The paper's testbed assumes a fully connected network where
// any cross-processor message costs exactly the PDG edge weight; the
// Mapping Heuristic (MH) was however designed to exploit topology and
// contention, so this package also provides rings, meshes, hypercubes
// and stars with hop-count routing and an optional per-link contention
// tracker. These power the topology example and the ablation benches.
package topology

import (
	"fmt"
)

// Network is an undirected processor interconnect with unit-capacity
// links. Processors are numbered 0..N-1. A fully connected network may
// be unbounded (N == 0), meaning new processors can always be added one
// hop away from everything else.
type Network struct {
	name      string
	n         int     // 0 = unbounded fully connected
	adj       [][]int // adjacency lists (nil for fully connected)
	dist      [][]int // all-pairs hop counts (nil for fully connected)
	nextHop   [][]int // nextHop[a][b]: first hop from a toward b
	perHopLat int64   // fixed per-hop latency added to each hop (0 by default)
}

// FullyConnected returns a complete network of n processors; n == 0
// means "as many processors as the scheduler asks for".
func FullyConnected(n int) *Network {
	return &Network{name: fmt.Sprintf("fully-connected(%d)", n), n: n}
}

// Ring returns a bidirectional ring of n ≥ 2 processors.
func Ring(n int) *Network {
	if n < 2 {
		panic("topology: ring needs at least 2 processors")
	}
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		adj[i] = []int{(i + 1) % n, (i + n - 1) % n}
	}
	return fromAdj(fmt.Sprintf("ring(%d)", n), adj)
}

// Mesh returns a w×h 2D mesh (no wraparound), processors numbered row
// major.
func Mesh(w, h int) *Network {
	if w < 1 || h < 1 || w*h < 2 {
		panic("topology: mesh needs at least 2 processors")
	}
	n := w * h
	adj := make([][]int, n)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var nb []int
			if x > 0 {
				nb = append(nb, id(x-1, y))
			}
			if x < w-1 {
				nb = append(nb, id(x+1, y))
			}
			if y > 0 {
				nb = append(nb, id(x, y-1))
			}
			if y < h-1 {
				nb = append(nb, id(x, y+1))
			}
			adj[id(x, y)] = nb
		}
	}
	return fromAdj(fmt.Sprintf("mesh(%dx%d)", w, h), adj)
}

// Hypercube returns a hypercube of dimension dim (2^dim processors).
func Hypercube(dim int) *Network {
	if dim < 1 || dim > 20 {
		panic("topology: hypercube dimension out of range")
	}
	n := 1 << uint(dim)
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for b := 0; b < dim; b++ {
			adj[i] = append(adj[i], i^(1<<uint(b)))
		}
	}
	return fromAdj(fmt.Sprintf("hypercube(%d)", dim), adj)
}

// Star returns a star of n processors with processor 0 as the hub.
func Star(n int) *Network {
	if n < 2 {
		panic("topology: star needs at least 2 processors")
	}
	adj := make([][]int, n)
	for i := 1; i < n; i++ {
		adj[0] = append(adj[0], i)
		adj[i] = []int{0}
	}
	return fromAdj(fmt.Sprintf("star(%d)", n), adj)
}

func fromAdj(name string, adj [][]int) *Network {
	n := len(adj)
	net := &Network{name: name, n: n, adj: adj}
	net.dist = make([][]int, n)
	net.nextHop = make([][]int, n)
	for s := 0; s < n; s++ {
		dist := make([]int, n)
		next := make([]int, n)
		for i := range dist {
			dist[i] = -1
			next[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					if u == s {
						next[v] = v
					} else {
						next[v] = next[u]
					}
					queue = append(queue, v)
				}
			}
		}
		for i, d := range dist {
			if d == -1 {
				panic(fmt.Sprintf("topology: %s is disconnected (no path %d->%d)", name, s, i))
			}
		}
		net.dist[s] = dist
		net.nextHop[s] = next
	}
	return net
}

// Name returns a human-readable description.
func (t *Network) Name() string { return t.name }

// NumProcs returns the processor count; 0 means unbounded.
func (t *Network) NumProcs() int { return t.n }

// Unbounded reports whether the network can grow arbitrarily.
func (t *Network) Unbounded() bool { return t.n == 0 && t.adj == nil }

// SetPerHopLatency sets a fixed latency added per hop traversed (on top
// of the message transmission weight). Zero by default, matching the
// paper's model.
func (t *Network) SetPerHopLatency(l int64) {
	if l < 0 {
		panic("topology: negative latency")
	}
	t.perHopLat = l
}

// Hops returns the number of hops between processors a and b (0 when
// a == b; 1 for any pair on a fully connected network).
func (t *Network) Hops(a, b int) int {
	if a == b {
		return 0
	}
	if t.adj == nil {
		return 1
	}
	t.bound(a)
	t.bound(b)
	return t.dist[a][b]
}

// Delay returns the uncontended transfer time for a message of the
// given weight from a to b: weight per hop (store-and-forward) plus the
// per-hop latency. Same-processor messages are free.
func (t *Network) Delay(a, b int, weight int64) int64 {
	h := int64(t.Hops(a, b))
	return h * (weight + t.perHopLat)
}

// Route returns the shortest path from a to b as a processor sequence
// including both endpoints. On a fully connected network the path is
// direct.
func (t *Network) Route(a, b int) []int {
	if a == b {
		return []int{a}
	}
	if t.adj == nil {
		return []int{a, b}
	}
	t.bound(a)
	t.bound(b)
	path := []int{a}
	cur := a
	for cur != b {
		cur = t.nextHop[cur][b]
		path = append(path, cur)
	}
	return path
}

func (t *Network) bound(p int) {
	if p < 0 || p >= t.n {
		panic(fmt.Sprintf("topology: processor %d out of range [0,%d)", p, t.n))
	}
}
