package topology

import (
	"testing"
)

func TestFullyConnected(t *testing.T) {
	net := FullyConnected(4)
	if net.Hops(1, 3) != 1 || net.Hops(2, 2) != 0 {
		t.Error("fully connected hops wrong")
	}
	if net.Delay(0, 1, 10) != 10 {
		t.Errorf("Delay = %d, want 10", net.Delay(0, 1, 10))
	}
	if net.Delay(1, 1, 10) != 0 {
		t.Error("same-proc delay should be 0")
	}
	if net.Unbounded() {
		t.Error("bounded net reported unbounded")
	}
	if !FullyConnected(0).Unbounded() {
		t.Error("FullyConnected(0) should be unbounded")
	}
}

func TestRingHops(t *testing.T) {
	net := Ring(6)
	cases := []struct{ a, b, want int }{
		{0, 1, 1}, {0, 3, 3}, {0, 5, 1}, {1, 4, 3}, {2, 2, 0},
	}
	for _, c := range cases {
		if got := net.Hops(c.a, c.b); got != c.want {
			t.Errorf("ring Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMeshHops(t *testing.T) {
	net := Mesh(3, 3) // ids: 0..8 row-major
	if got := net.Hops(0, 8); got != 4 {
		t.Errorf("mesh Hops(0,8) = %d, want 4 (Manhattan)", got)
	}
	if got := net.Hops(3, 5); got != 2 {
		t.Errorf("mesh Hops(3,5) = %d, want 2", got)
	}
}

func TestHypercubeHops(t *testing.T) {
	net := Hypercube(3)
	if net.NumProcs() != 8 {
		t.Fatalf("NumProcs = %d, want 8", net.NumProcs())
	}
	// Hamming distance.
	if got := net.Hops(0, 7); got != 3 {
		t.Errorf("hypercube Hops(0,7) = %d, want 3", got)
	}
	if got := net.Hops(5, 4); got != 1 {
		t.Errorf("hypercube Hops(5,4) = %d, want 1", got)
	}
}

func TestStarHops(t *testing.T) {
	net := Star(5)
	if got := net.Hops(1, 2); got != 2 {
		t.Errorf("star Hops(1,2) = %d, want 2", got)
	}
	if got := net.Hops(0, 4); got != 1 {
		t.Errorf("star Hops(0,4) = %d, want 1", got)
	}
}

func TestRouteEndpoints(t *testing.T) {
	net := Mesh(4, 4)
	r := net.Route(0, 15)
	if r[0] != 0 || r[len(r)-1] != 15 {
		t.Errorf("route endpoints wrong: %v", r)
	}
	if len(r) != net.Hops(0, 15)+1 {
		t.Errorf("route length %d inconsistent with hops %d", len(r), net.Hops(0, 15))
	}
	for i := 0; i+1 < len(r); i++ {
		if net.Hops(r[i], r[i+1]) != 1 {
			t.Errorf("route step %d->%d is not one hop", r[i], r[i+1])
		}
	}
}

func TestPerHopLatency(t *testing.T) {
	net := Ring(4)
	net.SetPerHopLatency(3)
	// 2 hops, each weight 10 + latency 3.
	if got := net.Delay(0, 2, 10); got != 26 {
		t.Errorf("Delay with latency = %d, want 26", got)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"ring1":    func() { Ring(1) },
		"mesh0":    func() { Mesh(0, 5) },
		"hcube0":   func() { Hypercube(0) },
		"star1":    func() { Star(1) },
		"negLat":   func() { FullyConnected(2).SetPerHopLatency(-1) },
		"hopsOOR":  func() { Ring(4).Hops(0, 9) },
		"routeOOR": func() { Mesh(2, 2).Route(0, 99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTrafficSerializesOnSharedLink(t *testing.T) {
	net := Star(3) // procs 1 and 2 both reach each other via hub 0
	tr := NewTraffic(net)
	// First message 1->2 occupies links (0,1) then (0,2).
	a1 := tr.Send(1, 2, 0, 10)
	if a1 != 20 {
		t.Fatalf("first arrival = %d, want 20 (two 10-unit hops)", a1)
	}
	// Second message over the same route, also ready at 0, must queue.
	a2 := tr.Send(1, 2, 0, 10)
	if a2 <= a1 {
		t.Errorf("second arrival %d should be delayed past %d", a2, a1)
	}
}

func TestTrafficPeekDoesNotReserve(t *testing.T) {
	net := Ring(4)
	tr := NewTraffic(net)
	p1 := tr.Peek(0, 1, 0, 5)
	p2 := tr.Peek(0, 1, 0, 5)
	if p1 != p2 {
		t.Error("Peek reserved link capacity")
	}
	got := tr.Send(0, 1, 0, 5)
	if got != p1 {
		t.Errorf("Send = %d, want peeked %d", got, p1)
	}
}

func TestTrafficSameProc(t *testing.T) {
	tr := NewTraffic(Ring(4))
	if tr.Send(2, 2, 7, 100) != 7 {
		t.Error("same-proc send should arrive at ready time")
	}
}

func TestTrafficReset(t *testing.T) {
	net := Ring(4)
	tr := NewTraffic(net)
	tr.Send(0, 2, 0, 10)
	tr.Reset()
	if got := tr.Send(0, 2, 0, 10); got != 20 {
		t.Errorf("after Reset arrival = %d, want 20", got)
	}
}

func TestDisconnectedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("disconnected adjacency did not panic")
		}
	}()
	fromAdj("broken", [][]int{{}, {}})
}
