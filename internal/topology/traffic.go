package topology

// Traffic tracks per-link occupancy so that schedulers (MH) can model
// contention: two messages crossing the same link serialize. Links are
// undirected and have unit capacity. The zero value is not usable; call
// NewTraffic.
type Traffic struct {
	net  *Network
	busy map[link]int64 // time at which the link becomes free
}

type link struct{ a, b int }

func mkLink(a, b int) link {
	if a > b {
		a, b = b, a
	}
	return link{a, b}
}

// NewTraffic returns an empty contention tracker for net.
func NewTraffic(net *Network) *Traffic {
	return &Traffic{net: net, busy: make(map[link]int64)}
}

// Send reserves the links on the route from a to b for a message of the
// given weight that becomes available at ready, and returns its arrival
// time at b. Store-and-forward: the message occupies each link of the
// route in sequence for `weight + perHopLatency` time units, waiting
// whenever a link is busy. Same-processor sends arrive immediately.
func (tr *Traffic) Send(a, b int, ready, weight int64) int64 {
	if a == b {
		return ready
	}
	route := tr.net.Route(a, b)
	t := ready
	for i := 0; i+1 < len(route); i++ {
		l := mkLink(route[i], route[i+1])
		start := t
		if f := tr.busy[l]; f > start {
			start = f
		}
		t = start + weight + tr.net.perHopLat
		tr.busy[l] = t
	}
	return t
}

// Peek returns the arrival time Send would produce without reserving
// any link.
func (tr *Traffic) Peek(a, b int, ready, weight int64) int64 {
	if a == b {
		return ready
	}
	route := tr.net.Route(a, b)
	t := ready
	for i := 0; i+1 < len(route); i++ {
		l := mkLink(route[i], route[i+1])
		start := t
		if f := tr.busy[l]; f > start {
			start = f
		}
		t = start + weight + tr.net.perHopLat
	}
	return t
}

// Reset clears all reservations.
func (tr *Traffic) Reset() {
	tr.busy = make(map[link]int64)
}
