// Package workloads builds the structured "application class" task
// graphs the paper's conclusion calls for as the next step beyond
// random PDGs: DAGs shaped like real parallel computations, with a
// tunable communication-to-computation scale. They drive the examples
// and the application-class benches.
//
// Every constructor takes task and message cost parameters explicitly,
// so callers control the granularity regime the graph lands in.
package workloads

import (
	"fmt"

	"schedcomp/internal/dag"
)

// FFT returns the task graph of a radix-2 FFT over 2^k points: k+1
// ranks of 2^k butterfly tasks, each task feeding the two tasks of the
// next rank that share its butterfly pair. taskCost is each
// butterfly's execution time; msgCost the weight of each edge.
func FFT(k int, taskCost, msgCost int64) *dag.Graph {
	if k < 1 || k > 16 {
		panic("workloads: FFT size out of range")
	}
	n := 1 << uint(k)
	g := dag.New(fmt.Sprintf("fft-%d", n))
	ranks := make([][]dag.NodeID, k+1)
	for r := 0; r <= k; r++ {
		ranks[r] = make([]dag.NodeID, n)
		for i := 0; i < n; i++ {
			ranks[r][i] = g.AddNode(taskCost)
		}
	}
	for r := 0; r < k; r++ {
		stride := 1 << uint(k-r-1)
		for i := 0; i < n; i++ {
			partner := i ^ stride
			g.MustAddEdge(ranks[r][i], ranks[r+1][i], msgCost)
			g.MustAddEdge(ranks[r][i], ranks[r+1][partner], msgCost)
		}
	}
	return g
}

// GaussianElimination returns the task graph of unblocked Gaussian
// elimination on an n×n matrix: for each pivot column k there is a
// pivot task followed by n-k-1 row-update tasks, each depending on the
// pivot task and on its own row's update from the previous step.
func GaussianElimination(n int, taskCost, msgCost int64) *dag.Graph {
	if n < 2 || n > 200 {
		panic("workloads: Gaussian elimination size out of range")
	}
	g := dag.New(fmt.Sprintf("gauss-%d", n))
	// prev[r] is the task that last updated row r.
	prev := make([]dag.NodeID, n)
	for r := range prev {
		prev[r] = -1
	}
	for k := 0; k < n-1; k++ {
		pivot := g.AddNode(taskCost)
		if prev[k] >= 0 {
			g.MustAddEdge(prev[k], pivot, msgCost)
		}
		prev[k] = pivot
		for r := k + 1; r < n; r++ {
			upd := g.AddNode(taskCost)
			g.MustAddEdge(pivot, upd, msgCost)
			if prev[r] >= 0 {
				g.MustAddEdge(prev[r], upd, msgCost)
			}
			prev[r] = upd
		}
	}
	return g
}

// LU returns the task graph of a tiled LU decomposition with t×t
// tiles: diagonal factorizations, panel solves and trailing-matrix
// updates with the classic dependence pattern.
func LU(t int, taskCost, msgCost int64) *dag.Graph {
	if t < 2 || t > 30 {
		panic("workloads: LU tile count out of range")
	}
	g := dag.New(fmt.Sprintf("lu-%dx%d", t, t))
	// state[i][j] is the task that last wrote tile (i,j).
	state := make([][]dag.NodeID, t)
	for i := range state {
		state[i] = make([]dag.NodeID, t)
		for j := range state[i] {
			state[i][j] = -1
		}
	}
	dep := func(task dag.NodeID, i, j int) {
		if state[i][j] >= 0 {
			g.MustAddEdge(state[i][j], task, msgCost)
		}
		state[i][j] = task
	}
	for k := 0; k < t; k++ {
		diag := g.AddNode(2 * taskCost) // getrf is heavier
		dep(diag, k, k)
		for j := k + 1; j < t; j++ {
			trsmRow := g.AddNode(taskCost)
			g.MustAddEdge(diag, trsmRow, msgCost)
			dep(trsmRow, k, j)
			trsmCol := g.AddNode(taskCost)
			g.MustAddEdge(diag, trsmCol, msgCost)
			dep(trsmCol, j, k)
		}
		for i := k + 1; i < t; i++ {
			for j := k + 1; j < t; j++ {
				gemm := g.AddNode(taskCost)
				// Depends on the panel tiles (k,j) and (i,k).
				g.MustAddEdge(state[k][j], gemm, msgCost)
				g.MustAddEdge(state[i][k], gemm, msgCost)
				dep(gemm, i, j)
			}
		}
	}
	return g
}

// Laplace returns the task graph of iters Jacobi sweeps over a w×w
// grid decomposed into s×s strips: each strip's task at iteration t
// depends on itself and its neighbour strips at iteration t-1.
func Laplace(s, iters int, taskCost, msgCost int64) *dag.Graph {
	if s < 2 || s > 40 || iters < 1 || iters > 100 {
		panic("workloads: Laplace parameters out of range")
	}
	g := dag.New(fmt.Sprintf("laplace-%dx%d-i%d", s, s, iters))
	prev := make([]dag.NodeID, s)
	for i := range prev {
		prev[i] = -1
	}
	for it := 0; it < iters; it++ {
		cur := make([]dag.NodeID, s)
		for i := 0; i < s; i++ {
			cur[i] = g.AddNode(taskCost)
			if it > 0 {
				g.MustAddEdge(prev[i], cur[i], msgCost)
				if i > 0 {
					g.MustAddEdge(prev[i-1], cur[i], msgCost)
				}
				if i < s-1 {
					g.MustAddEdge(prev[i+1], cur[i], msgCost)
				}
			}
		}
		prev = cur
	}
	return g
}

// DivideAndConquer returns a balanced binary divide/merge tree of
// depth d: 2^d leaf computations between a splitting phase and a
// merging phase.
func DivideAndConquer(d int, taskCost, msgCost int64) *dag.Graph {
	if d < 1 || d > 12 {
		panic("workloads: divide-and-conquer depth out of range")
	}
	g := dag.New(fmt.Sprintf("dnc-%d", d))
	// Splitting tree.
	level := []dag.NodeID{g.AddNode(taskCost)}
	for l := 0; l < d; l++ {
		var next []dag.NodeID
		for _, p := range level {
			a := g.AddNode(taskCost)
			b := g.AddNode(taskCost)
			g.MustAddEdge(p, a, msgCost)
			g.MustAddEdge(p, b, msgCost)
			next = append(next, a, b)
		}
		level = next
	}
	// Merging tree.
	for l := 0; l < d; l++ {
		var next []dag.NodeID
		for i := 0; i < len(level); i += 2 {
			m := g.AddNode(taskCost)
			g.MustAddEdge(level[i], m, msgCost)
			g.MustAddEdge(level[i+1], m, msgCost)
			next = append(next, m)
		}
		level = next
	}
	return g
}

// ForkJoin returns s sequential stages of w-wide fork-join sections.
func ForkJoin(stages, width int, taskCost, msgCost int64) *dag.Graph {
	if stages < 1 || width < 1 || stages*width > 100000 {
		panic("workloads: fork-join parameters out of range")
	}
	g := dag.New(fmt.Sprintf("forkjoin-%dx%d", stages, width))
	prev := g.AddNode(taskCost)
	for s := 0; s < stages; s++ {
		join := g.AddNode(taskCost)
		for i := 0; i < width; i++ {
			v := g.AddNode(taskCost)
			g.MustAddEdge(prev, v, msgCost)
			g.MustAddEdge(v, join, msgCost)
		}
		prev = join
	}
	return g
}

// Pipeline returns a p-stage software pipeline processing b data
// blocks: task (s,b) depends on (s-1,b) (the same block's previous
// stage) and (s,b-1) (the stage's previous block).
func Pipeline(stages, blocks int, taskCost, msgCost int64) *dag.Graph {
	if stages < 1 || blocks < 1 || stages*blocks > 100000 {
		panic("workloads: pipeline parameters out of range")
	}
	g := dag.New(fmt.Sprintf("pipeline-%dx%d", stages, blocks))
	prevStage := make([]dag.NodeID, blocks)
	for s := 0; s < stages; s++ {
		var prevBlock dag.NodeID = -1
		for b := 0; b < blocks; b++ {
			v := g.AddNode(taskCost)
			if s > 0 {
				g.MustAddEdge(prevStage[b], v, msgCost)
			}
			if prevBlock >= 0 {
				g.MustAddEdge(prevBlock, v, msgCost)
			}
			prevStage[b] = v
			prevBlock = v
		}
	}
	return g
}

// Cholesky returns the task graph of a tiled Cholesky factorization
// with t×t tiles (lower triangle): POTRF on diagonals, TRSM panels,
// SYRK/GEMM updates with the classic dependences.
func Cholesky(t int, taskCost, msgCost int64) *dag.Graph {
	if t < 2 || t > 30 {
		panic("workloads: Cholesky tile count out of range")
	}
	g := dag.New(fmt.Sprintf("cholesky-%dx%d", t, t))
	state := make([][]dag.NodeID, t)
	for i := range state {
		state[i] = make([]dag.NodeID, t)
		for j := range state[i] {
			state[i][j] = -1
		}
	}
	dep := func(task dag.NodeID, i, j int) {
		if state[i][j] >= 0 {
			g.MustAddEdge(state[i][j], task, msgCost)
		}
		state[i][j] = task
	}
	for k := 0; k < t; k++ {
		potrf := g.AddNode(2 * taskCost)
		dep(potrf, k, k)
		for i := k + 1; i < t; i++ {
			trsm := g.AddNode(taskCost)
			g.MustAddEdge(potrf, trsm, msgCost)
			dep(trsm, i, k)
		}
		for i := k + 1; i < t; i++ {
			for j := k + 1; j <= i; j++ {
				upd := g.AddNode(taskCost)
				g.MustAddEdge(state[i][k], upd, msgCost)
				if j != i {
					g.MustAddEdge(state[j][k], upd, msgCost)
				}
				dep(upd, i, j)
			}
		}
	}
	return g
}

// Stencil2D returns iters sweeps over a t×t tile grid where each tile
// at iteration s depends on itself and its 4-neighbours at iteration
// s-1 (a 5-point Jacobi stencil at tile granularity).
func Stencil2D(t, iters int, taskCost, msgCost int64) *dag.Graph {
	if t < 2 || t > 20 || iters < 1 || iters > 50 {
		panic("workloads: Stencil2D parameters out of range")
	}
	g := dag.New(fmt.Sprintf("stencil2d-%dx%d-i%d", t, t, iters))
	id := func(x, y int) int { return y*t + x }
	prev := make([]dag.NodeID, t*t)
	for i := range prev {
		prev[i] = -1
	}
	for s := 0; s < iters; s++ {
		cur := make([]dag.NodeID, t*t)
		for y := 0; y < t; y++ {
			for x := 0; x < t; x++ {
				v := g.AddNode(taskCost)
				cur[id(x, y)] = v
				if s > 0 {
					g.MustAddEdge(prev[id(x, y)], v, msgCost)
					if x > 0 {
						g.MustAddEdge(prev[id(x-1, y)], v, msgCost)
					}
					if x < t-1 {
						g.MustAddEdge(prev[id(x+1, y)], v, msgCost)
					}
					if y > 0 {
						g.MustAddEdge(prev[id(x, y-1)], v, msgCost)
					}
					if y < t-1 {
						g.MustAddEdge(prev[id(x, y+1)], v, msgCost)
					}
				}
			}
		}
		prev = cur
	}
	return g
}

// All returns one representative instance of every workload at the
// given cost scale, for sweep-style examples and benches.
func All(taskCost, msgCost int64) []*dag.Graph {
	return []*dag.Graph{
		FFT(4, taskCost, msgCost),
		GaussianElimination(8, taskCost, msgCost),
		LU(4, taskCost, msgCost),
		Cholesky(5, taskCost, msgCost),
		Laplace(6, 6, taskCost, msgCost),
		Stencil2D(4, 4, taskCost, msgCost),
		DivideAndConquer(4, taskCost, msgCost),
		ForkJoin(4, 6, taskCost, msgCost),
		Pipeline(4, 10, taskCost, msgCost),
	}
}
