package workloads

import (
	"testing"

	"schedcomp/internal/dag"
	"schedcomp/internal/heuristics"

	_ "schedcomp/internal/heuristics/clans"
	_ "schedcomp/internal/heuristics/dsc"
	_ "schedcomp/internal/heuristics/hu"
	_ "schedcomp/internal/heuristics/mcp"
	_ "schedcomp/internal/heuristics/mh"
)

func validate(t *testing.T, g *dag.Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("%s: %v", g.Name(), err)
	}
}

func TestFFTShape(t *testing.T) {
	g := FFT(3, 10, 5)
	validate(t, g)
	// (k+1) ranks of 2^k tasks.
	if g.NumNodes() != 4*8 {
		t.Errorf("nodes = %d, want 32", g.NumNodes())
	}
	// k ranks of 2 edges per task.
	if g.NumEdges() != 3*8*2 {
		t.Errorf("edges = %d, want 48", g.NumEdges())
	}
	if len(g.Sources()) != 8 || len(g.Sinks()) != 8 {
		t.Errorf("sources/sinks = %d/%d, want 8/8", len(g.Sources()), len(g.Sinks()))
	}
	// Every non-final task has out-degree exactly 2.
	if g.AnchorOutDegree() != 2 {
		t.Errorf("anchor = %d, want 2", g.AnchorOutDegree())
	}
}

func TestGaussianEliminationShape(t *testing.T) {
	n := 6
	g := GaussianElimination(n, 10, 5)
	validate(t, g)
	// Tasks: sum over k of 1 + (n-k-1) for k = 0..n-2.
	want := 0
	for k := 0; k < n-1; k++ {
		want += 1 + (n - k - 1)
	}
	if g.NumNodes() != want {
		t.Errorf("nodes = %d, want %d", g.NumNodes(), want)
	}
	// Single final task (the last update of row n-1)? The final pivot
	// chain ends with one task updating row n-1.
	if len(g.Sinks()) != 1 {
		t.Errorf("sinks = %d, want 1", len(g.Sinks()))
	}
}

func TestLUShape(t *testing.T) {
	tl := 3
	g := LU(tl, 10, 5)
	validate(t, g)
	// Tasks per step k: 1 diag + 2(t-k-1) trsm + (t-k-1)^2 gemm.
	want := 0
	for k := 0; k < tl; k++ {
		r := tl - k - 1
		want += 1 + 2*r + r*r
	}
	if g.NumNodes() != want {
		t.Errorf("nodes = %d, want %d", g.NumNodes(), want)
	}
}

func TestLaplaceShape(t *testing.T) {
	g := Laplace(5, 3, 10, 2)
	validate(t, g)
	if g.NumNodes() != 5*3 {
		t.Errorf("nodes = %d, want 15", g.NumNodes())
	}
	// Interior strips depend on 3 neighbours; iteration 0 has none.
	if len(g.Sources()) != 5 {
		t.Errorf("sources = %d, want 5", len(g.Sources()))
	}
	if len(g.Sinks()) != 5 {
		t.Errorf("sinks = %d, want 5", len(g.Sinks()))
	}
}

func TestDivideAndConquerShape(t *testing.T) {
	d := 3
	g := DivideAndConquer(d, 10, 5)
	validate(t, g)
	// Split tree: 2^(d+1)-1 nodes; merge tree: 2^d - 1 internal nodes.
	want := (1<<uint(d+1) - 1) + (1<<uint(d) - 1)
	if g.NumNodes() != want {
		t.Errorf("nodes = %d, want %d", g.NumNodes(), want)
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Error("divide and conquer should have one source and one sink")
	}
}

func TestForkJoinShape(t *testing.T) {
	g := ForkJoin(3, 4, 10, 5)
	validate(t, g)
	if g.NumNodes() != 1+3*(4+1) {
		t.Errorf("nodes = %d, want 16", g.NumNodes())
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Error("fork-join should have one source and one sink")
	}
}

func TestPipelineShape(t *testing.T) {
	g := Pipeline(3, 5, 10, 5)
	validate(t, g)
	if g.NumNodes() != 15 {
		t.Errorf("nodes = %d, want 15", g.NumNodes())
	}
	// Critical path (no comm) = stages + blocks - 1 tasks.
	lv, err := g.BLevelsNoComm()
	if err != nil {
		t.Fatal(err)
	}
	var max int64
	for _, l := range lv {
		if l > max {
			max = l
		}
	}
	if max != int64(3+5-1)*10 {
		t.Errorf("critical path = %d, want %d", max, (3+5-1)*10)
	}
}

func TestCholeskyShape(t *testing.T) {
	tl := 4
	g := Cholesky(tl, 10, 5)
	validate(t, g)
	// Tasks per step k: 1 potrf + (t-k-1) trsm + T(t-k-1) updates
	// where T(m) = m(m+1)/2.
	want := 0
	for k := 0; k < tl; k++ {
		m := tl - k - 1
		want += 1 + m + m*(m+1)/2
	}
	if g.NumNodes() != want {
		t.Errorf("nodes = %d, want %d", g.NumNodes(), want)
	}
	if len(g.Sinks()) != 1 {
		t.Errorf("sinks = %d, want 1 (final POTRF)", len(g.Sinks()))
	}
}

func TestStencil2DShape(t *testing.T) {
	g := Stencil2D(3, 2, 10, 5)
	validate(t, g)
	if g.NumNodes() != 18 {
		t.Errorf("nodes = %d, want 18", g.NumNodes())
	}
	// Interior tile of the second sweep has 5 inputs.
	maxIn := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.InDegree(dag.NodeID(v)); d > maxIn {
			maxIn = d
		}
	}
	if maxIn != 5 {
		t.Errorf("max in-degree = %d, want 5", maxIn)
	}
	if len(g.Sources()) != 9 || len(g.Sinks()) != 9 {
		t.Errorf("sources/sinks = %d/%d, want 9/9", len(g.Sources()), len(g.Sinks()))
	}
}

func TestBadParametersPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"fft":     func() { FFT(0, 1, 1) },
		"gauss":   func() { GaussianElimination(1, 1, 1) },
		"lu":      func() { LU(1, 1, 1) },
		"chol":    func() { Cholesky(1, 1, 1) },
		"lapl":    func() { Laplace(1, 1, 1, 1) },
		"stencil": func() { Stencil2D(1, 1, 1, 1) },
		"dnc":     func() { DivideAndConquer(0, 1, 1) },
		"fj":      func() { ForkJoin(0, 1, 1, 1) },
		"pipe":    func() { Pipeline(0, 1, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted bad parameters", name)
				}
			}()
			f()
		}()
	}
}

// All five heuristics must schedule every workload validly, and CLANS
// must stay at or below serial time.
func TestAllWorkloadsScheduleValidly(t *testing.T) {
	for _, g := range All(20, 10) {
		validate(t, g)
		for _, s := range heuristics.All() {
			sc, err := heuristics.Run(s, g)
			if err != nil {
				t.Fatalf("%s on %s: %v", s.Name(), g.Name(), err)
			}
			if s.Name() == "CLANS" && sc.Makespan > g.SerialTime() {
				t.Errorf("CLANS on %s: makespan %d > serial %d",
					g.Name(), sc.Makespan, g.SerialTime())
			}
		}
	}
}

// On a coarse-grained fork-join every heuristic except HU should beat
// serial execution comfortably.
func TestCoarseForkJoinParallelizes(t *testing.T) {
	g := ForkJoin(2, 8, 1000, 10)
	for _, name := range []string{"CLANS", "DSC", "MCP", "MH"} {
		s, err := heuristics.New(name)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := heuristics.Run(s, g)
		if err != nil {
			t.Fatal(err)
		}
		if sp := sc.Speedup(); sp < 2 {
			t.Errorf("%s speedup on coarse fork-join = %v, want >= 2", name, sp)
		}
	}
}
