package schedcomp

import (
	"schedcomp/internal/heuristics/mh"
	"schedcomp/internal/sched"
	"schedcomp/internal/topology"
)

// Network is a homogeneous processor interconnect. The paper's model
// is the (unbounded) fully connected network; rings, meshes,
// hypercubes and stars are provided for the topology-aware Mapping
// Heuristic.
type Network = topology.Network

// Network constructors, re-exported from internal/topology.
var (
	// FullyConnected returns a complete network; n == 0 means
	// unbounded (the paper's machine model).
	FullyConnected = topology.FullyConnected
	// Ring returns a bidirectional ring of n processors.
	Ring = topology.Ring
	// Mesh returns a w×h 2D mesh.
	Mesh = topology.Mesh
	// Hypercube returns a 2^dim-processor hypercube.
	Hypercube = topology.Hypercube
	// Star returns an n-processor star with processor 0 as hub.
	Star = topology.Star
)

// NewMH returns a Mapping Heuristic scheduler bound to a specific
// network, optionally modelling per-link contention. Pass nil for the
// paper's unbounded fully connected machine.
func NewMH(net *Network, contention bool) Scheduler {
	return &mh.MH{Net: net, Contention: contention}
}

// ScheduleOnNetwork schedules g with the topology-aware Mapping
// Heuristic and times the result under the network's hop-based delay
// model (store-and-forward, no contention in the final timing). It
// validates the schedule under the same model.
func ScheduleOnNetwork(g *Graph, net *Network, contention bool) (*Schedule, error) {
	s := NewMH(net, contention)
	pl, err := s.Schedule(g)
	if err != nil {
		return nil, err
	}
	delay := func(from, to int, w int64) int64 { return net.Delay(from, to, w) }
	sc, err := sched.BuildWith(g, pl, delay)
	if err != nil {
		return nil, err
	}
	if err := sc.ValidateWith(delay); err != nil {
		return nil, err
	}
	return sc, nil
}
