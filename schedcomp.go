// Package schedcomp is a testbed for comparing multiprocessor DAG
// scheduling heuristics, reproducing Khan, McCreary & Jones, "A
// Comparison of Multiprocessor Scheduling Heuristics" (ICPP 1994).
//
// It provides:
//
//   - a weighted-DAG (program dependence graph) model;
//   - the five heuristics compared in the paper — CLANS (clan-based
//     graph decomposition), DSC (dominant sequence clustering), MCP
//     (modified critical path), MH (mapping heuristic) and HU (Hu's
//     algorithm with communication) — all evaluated under the paper's
//     common execution model;
//   - the paper's random PDG generator with control of granularity
//     band, anchor out-degree and node weight range;
//   - the numerical comparison testbed that regenerates every table
//     and figure of the paper's evaluation.
//
// Quick start:
//
//	g := schedcomp.NewGraph("demo")
//	a := g.AddNode(10)
//	b := g.AddNode(20)
//	g.MustAddEdge(a, b, 5)
//	s, err := schedcomp.ScheduleGraph("CLANS", g)
//	if err != nil { ... }
//	fmt.Println(s.Gantt(60))
//
// See the examples directory and cmd/schedbench for larger uses.
package schedcomp

import (
	"fmt"
	"math/rand"

	"schedcomp/internal/core"
	"schedcomp/internal/corpus"
	"schedcomp/internal/dag"
	"schedcomp/internal/experiments"
	"schedcomp/internal/gen"
	"schedcomp/internal/heuristics"
	"schedcomp/internal/sched"
	"schedcomp/internal/stats"

	// Register the five paper heuristics plus the classic additions
	// the paper's conclusion invites into the testbed (ETF, Sarkar's
	// EZ, Kim & Browne's LC, Sih & Lee's DLS, and a DCP-style
	// mobility scheduler).
	_ "schedcomp/internal/heuristics/clans"
	_ "schedcomp/internal/heuristics/dcp"
	_ "schedcomp/internal/heuristics/dls"
	_ "schedcomp/internal/heuristics/dsc"
	_ "schedcomp/internal/heuristics/etf"
	_ "schedcomp/internal/heuristics/ez"
	_ "schedcomp/internal/heuristics/hu"
	_ "schedcomp/internal/heuristics/lc"
	_ "schedcomp/internal/heuristics/mcp"
	_ "schedcomp/internal/heuristics/mh"

	// RAND is the control floor (random topological placement).
	_ "schedcomp/internal/heuristics/random"
)

// Core model types, re-exported for API stability.
type (
	// Graph is a weighted DAG (program dependence graph).
	Graph = dag.Graph
	// NodeID identifies a node within a Graph.
	NodeID = dag.NodeID
	// Placement maps tasks to processors with per-processor order.
	Placement = sched.Placement
	// Schedule is a fully timed placement.
	Schedule = sched.Schedule
	// Scheduler is the interface all heuristics implement.
	Scheduler = heuristics.Scheduler
	// Band is a granularity interval.
	Band = gen.Band
	// GenParams configures random PDG generation.
	GenParams = gen.Params
	// CorpusSpec configures generation of the paper's 60-class corpus.
	CorpusSpec = corpus.Spec
	// Corpus is a generated graph population.
	Corpus = corpus.Corpus
	// Evaluation holds testbed measurements for a corpus.
	Evaluation = core.Evaluation
	// Table is an aligned text table.
	Table = stats.Table
)

// NewGraph returns an empty PDG with the given name.
func NewGraph(name string) *Graph { return dag.New(name) }

// Heuristics returns the names of the registered schedulers.
func Heuristics() []string { return heuristics.Names() }

// PaperHeuristics returns the five paper heuristics in the paper's
// column order: CLANS, DSC, MCP, MH, HU.
func PaperHeuristics() []Scheduler { return heuristics.All() }

// NewScheduler returns a fresh scheduler by name ("CLANS", "DSC",
// "MCP", "MH" or "HU").
func NewScheduler(name string) (Scheduler, error) { return heuristics.New(name) }

// ScheduleGraph runs the named heuristic on g and returns the
// validated, timed schedule.
func ScheduleGraph(name string, g *Graph) (*Schedule, error) {
	s, err := heuristics.New(name)
	if err != nil {
		return nil, err
	}
	return heuristics.Run(s, g)
}

// Run schedules g with an explicit scheduler instance, builds the
// timed schedule under the common execution model, and validates it.
func Run(s Scheduler, g *Graph) (*Schedule, error) { return heuristics.Run(s, g) }

// Generate produces one random PDG in the requested class, seeded
// deterministically.
func Generate(p GenParams, seed int64) (*Graph, error) {
	g, err := gen.Generate(p, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, fmt.Errorf("schedcomp: %w", err)
	}
	return g, nil
}

// PaperBands returns the paper's five granularity classes.
func PaperBands() []Band { return gen.PaperBands() }

// PaperCorpusSpec returns the paper's full 2100-graph corpus
// specification (60 classes × 35 graphs).
func PaperCorpusSpec(seed int64) CorpusSpec { return corpus.PaperSpec(seed) }

// SmallCorpusSpec returns a reduced corpus for quick runs and tests.
func SmallCorpusSpec(seed int64) CorpusSpec { return corpus.SmallSpec(seed) }

// GenerateCorpus builds a classified graph population.
func GenerateCorpus(spec CorpusSpec) (*Corpus, error) { return corpus.Generate(spec) }

// LoadCorpus reads a corpus previously saved with (*Corpus).Save.
func LoadCorpus(dir string) (*Corpus, error) { return corpus.Load(dir) }

// Evaluate runs the five paper heuristics on every graph of the corpus
// and returns the measurements.
func Evaluate(c *Corpus) (*Evaluation, error) {
	return core.Evaluate(c, core.Options{})
}

// Tables regenerates the paper's Tables 2–11 from an evaluation.
func Tables(ev *Evaluation) []*Table { return experiments.AllTables(ev) }

// Figures renders the paper's Figures 1–6 as text charts.
func Figures(ev *Evaluation) []string { return experiments.AllFigures(ev) }

// CorpusTable reports the corpus composition (the paper's Table 1).
func CorpusTable(c *Corpus) *Table { return experiments.Table1(c) }
