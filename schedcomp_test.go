package schedcomp

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	g := NewGraph("demo")
	a := g.AddNode(10)
	b := g.AddNode(20)
	c := g.AddNode(30)
	g.MustAddEdge(a, b, 5)
	g.MustAddEdge(a, c, 5)
	for _, name := range Heuristics() {
		s, err := ScheduleGraph(name, g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Makespan <= 0 {
			t.Errorf("%s: makespan %d", name, s.Makespan)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestScheduleGraphUnknown(t *testing.T) {
	g := NewGraph("x")
	g.AddNode(1)
	if _, err := ScheduleGraph("NOPE", g); err == nil {
		t.Fatal("expected error for unknown heuristic")
	}
}

func TestPaperHeuristicsOrder(t *testing.T) {
	hs := PaperHeuristics()
	want := []string{"CLANS", "DSC", "MCP", "MH", "HU"}
	if len(hs) != len(want) {
		t.Fatalf("got %d heuristics", len(hs))
	}
	for i, h := range hs {
		if h.Name() != want[i] {
			t.Errorf("heuristic %d = %s, want %s", i, h.Name(), want[i])
		}
	}
}

func TestGenerateClassed(t *testing.T) {
	bands := PaperBands()
	g, err := Generate(GenParams{Nodes: 50, Anchor: 3, WMin: 20, WMax: 100, Gran: bands[2]}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bands[2].Contains(g.Granularity()) {
		t.Errorf("granularity %v outside band", g.Granularity())
	}
}

func TestEndToEndSmallCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	spec := SmallCorpusSpec(2)
	c, err := GenerateCorpus(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGraphs() != 60*spec.GraphsPerSet {
		t.Fatalf("graphs = %d", c.NumGraphs())
	}
	ev, err := Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	tables := Tables(ev)
	if len(tables) != 10 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tbl := range tables {
		out := tbl.String()
		for _, h := range []string{"CLANS", "DSC", "MCP", "MH", "HU"} {
			if !strings.Contains(out, h) {
				t.Errorf("%s missing column %s", tbl.Title, h)
			}
		}
	}
	figs := Figures(ev)
	if len(figs) != 6 {
		t.Fatalf("figures = %d", len(figs))
	}
	if got := len(CorpusTable(c).Rows); got != 60 {
		t.Errorf("corpus table rows = %d", got)
	}
}
