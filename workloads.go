package schedcomp

import "schedcomp/internal/workloads"

// Structured application task graphs (the paper's suggested next step
// beyond random PDGs), re-exported from internal/workloads. Every
// constructor takes the per-task execution cost and per-edge message
// cost, so callers control the granularity regime.
var (
	// FFT builds the butterfly graph of a radix-2 FFT over 2^k points.
	FFT = workloads.FFT
	// GaussianElimination builds the pivot/update graph of unblocked
	// Gaussian elimination on an n×n matrix.
	GaussianElimination = workloads.GaussianElimination
	// LU builds a tiled LU factorization graph with t×t tiles.
	LU = workloads.LU
	// Cholesky builds a tiled Cholesky factorization graph.
	Cholesky = workloads.Cholesky
	// Stencil2D builds an iterated 5-point stencil over a tile grid.
	Stencil2D = workloads.Stencil2D
	// Laplace builds an iterated Jacobi-sweep stencil graph.
	Laplace = workloads.Laplace
	// DivideAndConquer builds a balanced split/merge tree of depth d.
	DivideAndConquer = workloads.DivideAndConquer
	// ForkJoin builds sequential stages of parallel sections.
	ForkJoin = workloads.ForkJoin
	// Pipeline builds a software pipeline over data blocks.
	Pipeline = workloads.Pipeline
	// AllWorkloads returns one representative instance of each.
	AllWorkloads = workloads.All
)
